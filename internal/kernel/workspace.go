package kernel

import (
	"runtime"
	"sync"
)

// workspace holds the packing buffers of one in-flight packed GEMM:
// ap receives the mc x kc block of A as mr-row panels, bp the kc x nc
// block of B as nr-column panels. Buffers are recycled through an
// explicit free list — not a sync.Pool, whose contents a GC cycle may
// drop — so a Reserve'd buffer set genuinely persists for the whole
// factorization. The rt workers call kernels concurrently and a
// megabyte-scale allocation per GEMM call would dominate small updates.
type workspace struct {
	ap []float64
	bp []float64
}

var (
	wsMu   sync.Mutex
	wsFree []*workspace
	// wsReserved is the sum of all live Reservation sizes. The free
	// list is bounded by that sum while any reservation is live (each
	// concurrent run may have all of its workers holding a workspace at
	// once), and by wsDefaultCap between runs, so transient bursts of
	// unreserved concurrent GEMMs cannot pin memory forever.
	wsReserved int
	// wsOut counts buffer sets currently checked out; free + out is the
	// population Reserve tops up to the reserved sum, so overlapping
	// reservations each genuinely get their buffer count even when an
	// earlier run's buffers are in flight.
	wsOut        int
	wsDefaultCap = runtime.NumCPU()
)

// wsCapLocked returns the current free-list bound; wsMu must be held.
func wsCapLocked() int {
	if wsReserved > 0 {
		return wsReserved
	}
	return wsDefaultCap
}

// wsApLen/wsBpLen are the buffer lengths the active profile needs:
// packing pads the edge panel to a full mr/nr width, so each buffer
// carries one tile of slack beyond the mc*kc / kc*nc payload. maxMR and
// maxNR (not the active mr/nr) keep one allocation valid across every
// registered kernel at the same blocking, and in particular across the
// fixed panel tile (pmr/pnr) the GETRF path uses.
func wsApLen() int { return (mc + maxMR) * kc }
func wsBpLen() int { return (nc + maxNR) * kc }

func newWorkspace() *workspace {
	return &workspace{
		ap: make([]float64, wsApLen()),
		bp: make([]float64, wsBpLen()),
	}
}

func getWorkspace() *workspace {
	wsMu.Lock()
	wsOut++
	if n := len(wsFree); n > 0 {
		w := wsFree[n-1]
		wsFree = wsFree[:n-1]
		wsMu.Unlock()
		return w
	}
	wsMu.Unlock()
	return newWorkspace()
}

func putWorkspace(w *workspace) {
	wsMu.Lock()
	// A buffer sized under an earlier (smaller) profile must not
	// survive a retune: drop it and let the next checkout allocate at
	// the current size.
	if len(w.ap) >= wsApLen() && len(w.bp) >= wsBpLen() && len(wsFree) < wsCapLocked() {
		wsFree = append(wsFree, w)
	}
	wsOut--
	wsMu.Unlock()
}

// Reservation is one run's claim on n packing-buffer sets. The free
// list's bound is the SUM of all live reservations, so overlapping runs
// (the resident engine executes many factorizations concurrently) each
// keep their guaranteed buffer count: a 1-worker run starting next to
// an 8-worker run raises the bound to 9 instead of shrinking it to 1 —
// the retarget race the old global-cap Reserve had. Release the
// reservation when the run completes; the bound drops with it and the
// excess buffer sets are handed to the garbage collector, so
// alternating wide and narrow runs do not pin the widest run's
// per-worker buffers forever.
type Reservation struct {
	n int
}

// Reserve registers a run with n concurrent kernel callers and
// pre-allocates its buffer sets so no task pays the first-touch
// allocation of its pack buffers mid-factorization. internal/rt calls
// it with the worker count before starting a run; the resident engine
// holds one pool-wide reservation for its whole lifetime. n < 1
// reserves nothing (the returned Reservation is still valid to
// Release). The shared packed-panel cache's byte budget scales with the
// reserved sum (panelcache.go), so a wider pool may cache more panels.
func Reserve(n int) *Reservation {
	ensureTuned()
	if n < 1 {
		return &Reservation{}
	}
	wsMu.Lock()
	wsReserved += n
	// Two guarantees: this reservation's n buffers are on the free
	// list right now (checkouts in flight — other runs' or unreserved
	// callers' — cannot be counted as available to us), and the total
	// population covers the reserved sum (overlapping reservations
	// that have not checked out yet each still find their share
	// later). Either shortfall is topped up here, never
	// mid-factorization.
	for len(wsFree) < n || len(wsFree)+wsOut < wsReserved {
		wsFree = append(wsFree, newWorkspace())
	}
	reserved := wsReserved
	wsMu.Unlock()
	pcSetSlots(reserved)
	return &Reservation{n: n}
}

// Release returns the reservation. Idempotent: releasing twice is a
// no-op (the spent check happens under wsMu, so concurrent or repeated
// releases cannot double-subtract). The free list is trimmed to the
// new bound.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	wsMu.Lock()
	if r.n == 0 {
		wsMu.Unlock()
		return
	}
	wsReserved -= r.n
	r.n = 0
	if cap := wsCapLocked(); len(wsFree) > cap {
		for i := cap; i < len(wsFree); i++ {
			wsFree[i] = nil // release, do not retain via the backing array
		}
		wsFree = wsFree[:cap]
	}
	reserved := wsReserved
	wsMu.Unlock()
	pcSetSlots(reserved)
}

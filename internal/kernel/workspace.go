package kernel

import (
	"runtime"
	"sync"
)

// workspace holds the packing buffers of one in-flight packed GEMM:
// ap receives the mc x kc block of A as mr-row panels, bp the kc x nc
// block of B as nr-column panels. Buffers are recycled through an
// explicit free list — not a sync.Pool, whose contents a GC cycle may
// drop — so a Reserve'd buffer set genuinely persists for the whole
// factorization. The rt workers call kernels concurrently and a
// 1.3 MiB allocation per GEMM call would dominate small updates.
type workspace struct {
	ap []float64
	bp []float64
}

var (
	wsMu   sync.Mutex
	wsFree []*workspace
	// wsCap bounds the free list so transient bursts of concurrent
	// GEMMs cannot pin memory forever; Reserve retargets it to the
	// current run's worker count, shrinking as well as growing.
	wsCap = runtime.NumCPU()
)

func newWorkspace() *workspace {
	return &workspace{
		ap: make([]float64, mc*kc),
		bp: make([]float64, kc*nc),
	}
}

func getWorkspace() *workspace {
	wsMu.Lock()
	if n := len(wsFree); n > 0 {
		w := wsFree[n-1]
		wsFree = wsFree[:n-1]
		wsMu.Unlock()
		return w
	}
	wsMu.Unlock()
	return newWorkspace()
}

func putWorkspace(w *workspace) {
	wsMu.Lock()
	if len(wsFree) < wsCap {
		wsFree = append(wsFree, w)
	}
	wsMu.Unlock()
}

// Reserve ensures exactly n packing-buffer sets exist on the free
// list, one per concurrent caller. internal/rt calls it with the
// worker count before starting a run so no task pays the first-touch
// allocation of its pack buffers mid-factorization. The cap is
// per-run, not a high-water mark: a run with fewer workers lowers it
// and releases the excess buffer sets to the garbage collector, so
// alternating wide and narrow factorizations in one process does not
// pin the widest run's ~1.3 MiB-per-worker buffers forever. Buffers
// checked out by a concurrent run are unaffected; they are simply
// dropped instead of recycled when returned over the new cap.
func Reserve(n int) {
	if n < 1 {
		return
	}
	wsMu.Lock()
	defer wsMu.Unlock()
	wsCap = n
	if len(wsFree) > n {
		for i := n; i < len(wsFree); i++ {
			wsFree[i] = nil // release, do not retain via the backing array
		}
		wsFree = wsFree[:n]
	}
	for len(wsFree) < n {
		wsFree = append(wsFree, newWorkspace())
	}
}

package kernel

import (
	"runtime"
	"sync"
)

// workspace holds the packing buffers of one in-flight packed GEMM:
// ap receives the mc x kc block of A as mr-row panels, bp the kc x nc
// block of B as nr-column panels. Buffers are recycled through an
// explicit free list — not a sync.Pool, whose contents a GC cycle may
// drop — so a Reserve'd buffer set genuinely persists for the whole
// factorization. The rt workers call kernels concurrently and a
// 1.3 MiB allocation per GEMM call would dominate small updates.
type workspace struct {
	ap []float64
	bp []float64
}

var (
	wsMu   sync.Mutex
	wsFree []*workspace
	// wsReserved is the sum of all live Reservation sizes. The free
	// list is bounded by that sum while any reservation is live (each
	// concurrent run may have all of its workers holding a workspace at
	// once), and by wsDefaultCap between runs, so transient bursts of
	// unreserved concurrent GEMMs cannot pin memory forever.
	wsReserved int
	// wsOut counts buffer sets currently checked out; free + out is the
	// population Reserve tops up to the reserved sum, so overlapping
	// reservations each genuinely get their buffer count even when an
	// earlier run's buffers are in flight.
	wsOut        int
	wsDefaultCap = runtime.NumCPU()
)

// wsCapLocked returns the current free-list bound; wsMu must be held.
func wsCapLocked() int {
	if wsReserved > 0 {
		return wsReserved
	}
	return wsDefaultCap
}

func newWorkspace() *workspace {
	return &workspace{
		ap: make([]float64, mc*kc),
		bp: make([]float64, kc*nc),
	}
}

func getWorkspace() *workspace {
	wsMu.Lock()
	wsOut++
	if n := len(wsFree); n > 0 {
		w := wsFree[n-1]
		wsFree = wsFree[:n-1]
		wsMu.Unlock()
		return w
	}
	wsMu.Unlock()
	return newWorkspace()
}

func putWorkspace(w *workspace) {
	wsMu.Lock()
	wsOut--
	if len(wsFree) < wsCapLocked() {
		wsFree = append(wsFree, w)
	}
	wsMu.Unlock()
}

// Reservation is one run's claim on n packing-buffer sets. The free
// list's bound is the SUM of all live reservations, so overlapping runs
// (the resident engine executes many factorizations concurrently) each
// keep their guaranteed buffer count: a 1-worker run starting next to
// an 8-worker run raises the bound to 9 instead of shrinking it to 1 —
// the retarget race the old global-cap Reserve had. Release the
// reservation when the run completes; the bound drops with it and the
// excess buffer sets are handed to the garbage collector, so
// alternating wide and narrow runs do not pin the widest run's
// ~1.3 MiB-per-worker buffers forever.
type Reservation struct {
	n int
}

// Reserve registers a run with n concurrent kernel callers and
// pre-allocates its buffer sets so no task pays the first-touch
// allocation of its pack buffers mid-factorization. internal/rt calls
// it with the worker count before starting a run; the resident engine
// holds one pool-wide reservation for its whole lifetime. n < 1
// reserves nothing (the returned Reservation is still valid to
// Release).
func Reserve(n int) *Reservation {
	if n < 1 {
		return &Reservation{}
	}
	wsMu.Lock()
	defer wsMu.Unlock()
	wsReserved += n
	// Two guarantees: this reservation's n buffers are on the free
	// list right now (checkouts in flight — other runs' or unreserved
	// callers' — cannot be counted as available to us), and the total
	// population covers the reserved sum (overlapping reservations
	// that have not checked out yet each still find their share
	// later). Either shortfall is topped up here, never
	// mid-factorization.
	for len(wsFree) < n || len(wsFree)+wsOut < wsReserved {
		wsFree = append(wsFree, newWorkspace())
	}
	return &Reservation{n: n}
}

// Release returns the reservation. Idempotent: releasing twice is a
// no-op (the spent check happens under wsMu, so concurrent or repeated
// releases cannot double-subtract). The free list is trimmed to the
// new bound.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	wsMu.Lock()
	defer wsMu.Unlock()
	if r.n == 0 {
		return
	}
	wsReserved -= r.n
	r.n = 0
	if cap := wsCapLocked(); len(wsFree) > cap {
		for i := cap; i < len(wsFree); i++ {
			wsFree[i] = nil // release, do not retain via the backing array
		}
		wsFree = wsFree[:cap]
	}
}

package kernel

import (
	"math/rand"
	"sync"
	"testing"
)

// pcState snapshots the cache counters so tests can assert deltas
// (the counters are process-global and accumulate across tests).
func pcState() PanelCacheStats { return ReadPanelCacheStats() }

// setPanelBudget pins the byte budget for one test and restores it.
func setPanelBudget(t *testing.T, budget int64) {
	t.Helper()
	pcMu.Lock()
	old := pcBudget
	pcBudget = budget
	pcMu.Unlock()
	t.Cleanup(func() {
		pcMu.Lock()
		pcBudget = old
		pcMu.Unlock()
	})
}

// sharedGemmCase is one consumer set: `uses` distinct (C, A) pairs all
// multiplying by the same B, the shape the DAG builders create.
type sharedGemmCase struct {
	b      View
	as, cs []View
}

func newSharedGemmCase(rng *rand.Rand, m, n, k, uses int) sharedGemmCase {
	sc := sharedGemmCase{b: randView(rng, k, n)}
	for i := 0; i < uses; i++ {
		sc.as = append(sc.as, randView(rng, m, k))
		sc.cs = append(sc.cs, randView(rng, m, n))
	}
	return sc
}

// want runs the plain Gemm path over clones and returns the expected
// results.
func (sc sharedGemmCase) want() []View {
	out := make([]View, len(sc.cs))
	for i := range sc.cs {
		out[i] = cloneView(sc.cs[i])
		Gemm(out[i], sc.as[i], sc.b)
	}
	return out
}

// TestSharedBPanelHitBitIdentical: consumers streaming the shared
// packed B must produce results EXACTLY equal to the private path —
// same packed bytes, same loop order, same micro-kernel — so cache hit
// and miss cannot diverge numerically.
func TestSharedBPanelHitBitIdentical(t *testing.T) {
	ensureTuned()
	rng := rand.New(rand.NewSource(21))
	for _, shape := range [][4]int{{64, 64, 64, 3}, {150, 117, 93, 4}, {40, 700, 520, 2}} {
		m, n, k, uses := shape[0], shape[1], shape[2], shape[3]
		sc := newSharedGemmCase(rng, m, n, k, uses)
		want := sc.want()
		before := pcState()
		p := NewSharedBPanel(PanelKey{Epoch: NewEpoch(), Col: 1}, uses)
		if p == nil {
			t.Fatal("NewSharedBPanel returned nil for uses >= 2")
		}
		for i := range sc.cs {
			p.Gemm(sc.cs[i], sc.as[i], sc.b)
		}
		for i := range sc.cs {
			if d := maxAbsDiffBacking(sc.cs[i], want[i]); d != 0 {
				t.Fatalf("shape %v consumer %d: shared path diverges, max |diff| = %g (want exactly 0)", shape, i, d)
			}
		}
		after := pcState()
		if after.Packs != before.Packs+1 {
			t.Errorf("shape %v: packs %d -> %d, want exactly one shared packing", shape, before.Packs, after.Packs)
		}
		if after.Hits != before.Hits+int64(uses-1) {
			t.Errorf("shape %v: hits %d -> %d, want %d streaming consumers", shape, before.Hits, after.Hits, uses-1)
		}
		if after.UsedBytes != before.UsedBytes {
			t.Errorf("shape %v: used bytes leaked: %d -> %d", shape, before.UsedBytes, after.UsedBytes)
		}
	}
}

// TestSharedBPanelDeniedFallsBack: under a budget too small for the
// panel, every consumer takes the private path and the results are
// still exact; the denial is counted once and is sticky until Reset.
func TestSharedBPanelDeniedFallsBack(t *testing.T) {
	ensureTuned()
	setPanelBudget(t, 64) // bytes; any real panel exceeds this
	rng := rand.New(rand.NewSource(22))
	sc := newSharedGemmCase(rng, 96, 96, 96, 3)
	want := sc.want()
	before := pcState()
	p := NewSharedBPanel(PanelKey{Epoch: NewEpoch(), Col: 2}, 3)
	for i := range sc.cs {
		p.Gemm(sc.cs[i], sc.as[i], sc.b)
	}
	for i := range sc.cs {
		if d := maxAbsDiffBacking(sc.cs[i], want[i]); d != 0 {
			t.Fatalf("consumer %d: denied path diverges, max |diff| = %g", i, d)
		}
	}
	after := pcState()
	if got := after.Denied - before.Denied; got != 1 {
		t.Errorf("denials = %d, want 1 (sticky after the first)", got)
	}
	if got := after.Misses - before.Misses; got != 3 {
		t.Errorf("misses = %d, want one per consumer (3)", got)
	}
	if after.UsedBytes != before.UsedBytes {
		t.Errorf("denied panel changed used bytes: %d -> %d", before.UsedBytes, after.UsedBytes)
	}
}

// TestSharedBPanelConcurrent exercises the pack-once race under -race:
// all consumers run at once, the first to arrive packs while the rest
// block, and every result must equal the serial plain-Gemm oracle.
func TestSharedBPanelConcurrent(t *testing.T) {
	ensureTuned()
	rng := rand.New(rand.NewSource(23))
	const uses = 8
	sc := newSharedGemmCase(rng, 120, 96, 80, uses)
	want := sc.want()
	p := NewSharedBPanel(PanelKey{Epoch: NewEpoch(), Col: 3}, uses)
	var wg sync.WaitGroup
	for i := 0; i < uses; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.Gemm(sc.cs[i], sc.as[i], sc.b)
		}(i)
	}
	wg.Wait()
	for i := range sc.cs {
		if d := maxAbsDiffBacking(sc.cs[i], want[i]); d != 0 {
			t.Fatalf("concurrent consumer %d diverges: max |diff| = %g", i, d)
		}
	}
	if s := pcState(); s.UsedBytes < 0 {
		t.Fatalf("negative used bytes %d after concurrent run", s.UsedBytes)
	}
}

// TestSharedBPanelLifecycle covers the refcount free, ForceFree
// idempotence and Reset re-arming.
func TestSharedBPanelLifecycle(t *testing.T) {
	ensureTuned()
	rng := rand.New(rand.NewSource(24))
	sc := newSharedGemmCase(rng, 64, 64, 64, 2)
	before := pcState()
	p := NewSharedBPanel(PanelKey{Epoch: NewEpoch(), Col: 4}, 2)

	p.Gemm(cloneView(sc.cs[0]), sc.as[0], sc.b)
	if s := pcState(); s.UsedBytes <= before.UsedBytes {
		t.Fatal("first consumer did not charge the budget")
	}
	p.Gemm(cloneView(sc.cs[1]), sc.as[1], sc.b)
	if s := pcState(); s.UsedBytes != before.UsedBytes {
		t.Fatalf("last consumer did not free: used %d -> %d", before.UsedBytes, s.UsedBytes)
	}
	p.ForceFree() // idempotent after the refcount free
	if s := pcState(); s.UsedBytes != before.UsedBytes {
		t.Fatal("ForceFree after normal free changed accounting")
	}

	// Reset re-arms for a full re-execution (the rt path for re-runs).
	p.Reset()
	want := sc.want()
	got := []View{cloneView(sc.cs[0]), cloneView(sc.cs[1])}
	p.Gemm(got[0], sc.as[0], sc.b)
	p.Gemm(got[1], sc.as[1], sc.b)
	for i := range got {
		if d := maxAbsDiffBacking(got[i], want[i]); d != 0 {
			t.Fatalf("post-Reset consumer %d diverges: max |diff| = %g", i, d)
		}
	}
	if s := pcState(); s.UsedBytes != before.UsedBytes {
		t.Fatalf("re-execution leaked bytes: %d -> %d", before.UsedBytes, s.UsedBytes)
	}

	// Abort path: one consumer runs, the second never does; ForceFree
	// must reclaim.
	p.Reset()
	p.Gemm(cloneView(sc.cs[0]), sc.as[0], sc.b)
	if s := pcState(); s.UsedBytes <= before.UsedBytes {
		t.Fatal("aborted run did not hold a buffer before ForceFree")
	}
	p.ForceFree()
	if s := pcState(); s.UsedBytes != before.UsedBytes {
		t.Fatalf("ForceFree leaked: %d -> %d", before.UsedBytes, s.UsedBytes)
	}
}

// TestSharedBPanelNilDegrades: fewer than two consumers yields nil, and
// the nil receiver is the plain Gemm path.
func TestSharedBPanelNilDegrades(t *testing.T) {
	ensureTuned()
	if p := NewSharedBPanel(PanelKey{}, 1); p != nil {
		t.Fatal("one consumer should not allocate a shared panel")
	}
	rng := rand.New(rand.NewSource(25))
	a := randView(rng, 48, 48)
	b := randView(rng, 48, 48)
	c1 := randView(rng, 48, 48)
	c2 := cloneView(c1)
	var p *SharedBPanel
	p.Gemm(c1, a, b)
	Gemm(c2, a, b)
	if d := maxAbsDiffBacking(c1, c2); d != 0 {
		t.Fatalf("nil panel path diverges from Gemm: %g", d)
	}
}

// TestSharedBPanelSmallShapesBypass: shapes under the packed crossover
// must dispatch exactly like Gemm (small path), still bit-identical,
// without touching the cache.
func TestSharedBPanelSmallShapesBypass(t *testing.T) {
	ensureTuned()
	rng := rand.New(rand.NewSource(26))
	before := pcState()
	sc := newSharedGemmCase(rng, 8, 8, 8, 2)
	want := sc.want()
	p := NewSharedBPanel(PanelKey{Epoch: NewEpoch(), Col: 5}, 2)
	p.Gemm(sc.cs[0], sc.as[0], sc.b)
	p.Gemm(sc.cs[1], sc.as[1], sc.b)
	for i := range sc.cs {
		if d := maxAbsDiffBacking(sc.cs[i], want[i]); d != 0 {
			t.Fatalf("small-shape consumer %d diverges: %g", i, d)
		}
	}
	after := pcState()
	if after.Packs != before.Packs || after.Hits != before.Hits {
		t.Error("sub-crossover shapes must not engage the panel cache")
	}
}

package kernel

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// The shared packed-B-panel cache. Every trailing-update task of a
// factorization step consumes the same U block column (and every
// right-hand-side update of a solve sweep the same X block row): under
// the plain Gemm path each of those tasks re-packs the identical B
// operand into its private workspace. A SharedBPanel lets the DAG
// builder hand all consumers of one B operand a single refcounted
// packed buffer: the first task to run packs it (pack-once-then-stream,
// the discipline the HiGHS hybrid factorization demonstrates), later
// tasks stream it directly, and the last use frees it.
//
// Budget: cached panels are accounted against a byte budget that scales
// with the pool-wide kernel.Reserve sum (pcSetSlots, called by
// Reserve/Release), so a resident engine with more workers may cache
// more panels. When the budget is exhausted — or HSD_PANEL_CACHE=off —
// a panel falls back to the private packing path, which is bit-identical
// (same packed bytes, same loop order, same micro-kernel), so hit and
// miss paths cannot diverge numerically.
//
// Lifecycle: the builder knows the exact consumer count, so the
// refcount is exact and the normal path frees the buffer on the last
// Gemm. Aborted runs (a task panicked, the executor stopped scheduling)
// leave the count above zero; the executor calls Graph.ReleasePanels →
// ForceFree after the workers drain, so no budget leaks.

// PanelKey identifies one packed B operand: the factorization epoch
// (one per built graph, so concurrent factorizations never collide),
// the consuming block column, and the k-step whose update reads it.
type PanelKey struct {
	Epoch uint64
	Col   int
	Step  int
}

// panelEpoch hands out factorization epochs for PanelKeys.
var panelEpoch atomic.Uint64

// NewEpoch allocates a fresh factorization epoch. DAG builders call it
// once per graph so panels of concurrent factorizations are distinct.
func NewEpoch() uint64 { return panelEpoch.Add(1) }

const (
	// panelCacheBase is the byte budget available with no reservations
	// (one-shot runs before Reserve, tests).
	panelCacheBase = 8 << 20
	// panelCachePerSlot is the additional budget per reserved workspace
	// slot — roughly four 256x256 packed panels per worker.
	panelCachePerSlot = 1 << 20
)

// panelCacheOff pins every SharedBPanel to the private path (A/B
// comparisons, pathological memory pressure).
var panelCacheOff = os.Getenv("HSD_PANEL_CACHE") == "off"

var (
	pcMu     sync.Mutex
	pcBudget int64 = panelCacheBase
	pcUsed   int64
	pcPacks  int64 // first-consumer packings
	pcHits   int64 // later consumers streaming a cached panel
	pcMisses int64 // private-path fallbacks (denied or disabled)
	pcDenied int64 // budget denials
)

// pcSetSlots recomputes the byte budget from the pool-wide workspace
// reservation sum; Reserve and Release call it outside wsMu.
func pcSetSlots(slots int) {
	pcMu.Lock()
	if panelCacheOff {
		pcBudget = 0
	} else {
		pcBudget = panelCacheBase + int64(slots)*panelCachePerSlot
	}
	pcMu.Unlock()
}

// PanelCacheStats is a snapshot of the cache counters, for tests,
// benchmarks and debugging.
type PanelCacheStats struct {
	Packs, Hits, Misses, Denied int64
	UsedBytes, BudgetBytes      int64
}

// ReadPanelCacheStats returns the current counters.
func ReadPanelCacheStats() PanelCacheStats {
	pcMu.Lock()
	defer pcMu.Unlock()
	return PanelCacheStats{
		Packs: pcPacks, Hits: pcHits, Misses: pcMisses, Denied: pcDenied,
		UsedBytes: pcUsed, BudgetBytes: pcBudget,
	}
}

// panelSeg locates one (jc, pc) packed block inside the shared buffer,
// mirroring gemmPacked's loop order exactly.
type panelSeg struct {
	jc, pc, off int
}

// SharedBPanel is one refcounted packed B operand shared by the update
// tasks of a factorization or solve step. Built by the DAG builder with
// the exact consumer count; each consumer calls Gemm exactly once,
// which decrements the count, and the last call frees the buffer. A nil
// *SharedBPanel is valid and degrades to the plain kernel.Gemm path.
type SharedBPanel struct {
	// Key identifies the panel for debugging and traces.
	Key PanelKey

	initUses int64
	uses     atomic.Int64

	mu     sync.Mutex // guards the fields below
	packed bool
	denied bool // budget denial is sticky until Reset
	buf    []float64
	segs   []panelSeg
	bytes  int64
	k, n   int
}

// NewSharedBPanel creates a panel expected to be consumed by `uses`
// Gemm calls. With fewer than two consumers there is nothing to share
// and nil is returned (the nil receiver runs the plain path).
func NewSharedBPanel(key PanelKey, uses int) *SharedBPanel {
	if uses < 2 {
		return nil
	}
	p := &SharedBPanel{Key: key, initUses: int64(uses)}
	p.uses.Store(p.initUses)
	return p
}

// Reset re-arms the panel for another execution of its graph: any
// cached buffer is returned to the budget, denial is forgotten and the
// refcount is restored. Must not run concurrently with consumers.
func (p *SharedBPanel) Reset() {
	if p == nil {
		return
	}
	p.freeBuf()
	p.mu.Lock()
	p.denied = false
	p.mu.Unlock()
	p.uses.Store(p.initUses)
}

// ForceFree drops any cached buffer regardless of the remaining use
// count — executor teardown for aborted runs, where some consumers
// never executed. Idempotent; the normal last-use free makes it a
// no-op on clean runs.
func (p *SharedBPanel) ForceFree() {
	if p == nil {
		return
	}
	p.freeBuf()
}

// Gemm computes C -= A * B like kernel.Gemm, streaming the shared
// packed B on a hit and falling back to the private packed path
// otherwise. Every path dispatches exactly as kernel.Gemm does, so the
// result is bit-identical whether or not the panel was cached.
func (p *SharedBPanel) Gemm(c, a, b View) {
	if p == nil {
		Gemm(c, a, b)
		return
	}
	ensureTuned()
	m, n, k := c.Rows, c.Cols, a.Cols
	if a.Rows != m || b.Rows != k || b.Cols != n {
		panic(fmt.Sprintf("kernel: gemm shape mismatch C %dx%d, A %dx%d, B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	defer p.release()
	if useNaiveKernels {
		gemmNaive(c, a, b)
		return
	}
	if !packedWorthwhile(m, n, k) {
		gemmSmall(c, a, b, false)
		return
	}
	if p.ensurePacked(b) {
		gemmPackedSharedB(c, a, p)
		return
	}
	gemmPacked(c, a, b, false)
}

// release consumes one use; the last one frees the cached buffer.
func (p *SharedBPanel) release() {
	if p.uses.Add(-1) == 0 {
		p.freeBuf()
	}
}

func (p *SharedBPanel) freeBuf() {
	p.mu.Lock()
	if p.packed {
		p.packed = false
		p.buf, p.segs = nil, nil
		pcMu.Lock()
		pcUsed -= p.bytes
		pcMu.Unlock()
		p.bytes = 0
	}
	p.mu.Unlock()
}

// ensurePacked returns true with the shared buffer ready (packing it on
// the first call), or false when the byte budget denies the panel —
// the caller then packs privately. Concurrent consumers serialize here:
// the first packs while the rest wait, then all stream the same bytes.
func (p *SharedBPanel) ensurePacked(b View) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.packed {
		pcMu.Lock()
		pcHits++
		pcMu.Unlock()
		return true
	}
	if p.denied {
		pcMu.Lock()
		pcMisses++
		pcMu.Unlock()
		return false
	}
	k, n := b.Rows, b.Cols
	var segs []panelSeg
	total := 0
	for jc := 0; jc < n; jc += nc {
		ncLen := min(nc, n-jc)
		padded := (ncLen + nr - 1) / nr * nr
		for pc := 0; pc < k; pc += kc {
			kcLen := min(kc, k-pc)
			segs = append(segs, panelSeg{jc: jc, pc: pc, off: total})
			total += padded * kcLen
		}
	}
	bytes := int64(total) * 8
	pcMu.Lock()
	if pcUsed+bytes > pcBudget {
		pcDenied++
		pcMisses++
		pcMu.Unlock()
		p.denied = true
		return false
	}
	pcUsed += bytes
	pcPacks++
	pcMu.Unlock()
	buf := make([]float64, total)
	for _, s := range segs {
		packB(buf[s.off:], b, s.pc, s.jc, min(kc, k-s.pc), min(nc, n-s.jc), false, nr)
	}
	p.buf, p.segs, p.bytes = buf, segs, bytes
	p.k, p.n = k, n
	p.packed = true
	return true
}

// gemmPackedSharedB is gemmPacked with the B packing elided: the same
// jc/pc/ic loop nest and the same macro-kernel, but the B panel comes
// from the shared buffer. A is still packed privately per caller — the
// A operand differs across the sharing tasks, only B is common.
func gemmPackedSharedB(c, a View, p *SharedBPanel) {
	m := c.Rows
	ws := getWorkspace()
	defer putWorkspace(ws)
	si := 0
	for jc := 0; jc < p.n; jc += nc {
		ncLen := min(nc, p.n-jc)
		for pc := 0; pc < p.k; pc += kc {
			kcLen := min(kc, p.k-pc)
			bp := p.buf[p.segs[si].off:]
			si++
			for ic := 0; ic < m; ic += mc {
				mcLen := min(mc, m-ic)
				packA(ws.ap, a, ic, pc, mcLen, kcLen, mr)
				macroKernel(c, ws.ap, bp, ic, jc, mcLen, ncLen, kcLen)
			}
		}
	}
}

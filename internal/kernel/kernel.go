// Package kernel implements the sequential micro-BLAS and LAPACK-style
// kernels that CALU and the baselines are built from: dgemm, dtrsm,
// unblocked Gaussian elimination with partial pivoting (dgetf2),
// Toledo's recursive LU, row interchanges (dlaswp) and small helpers.
//
// All routines operate on column-major storage described by a base
// slice and a leading dimension (stride), so they work unchanged on
// the column-major, block-cyclic and two-level block layouts in
// internal/layout: each of those exposes blocks as strided views.
//
// The compute hot path — Gemm, GemmNT and the blocked triangular
// solves — is a cache-blocked, packed, register-tiled implementation
// in the Goto/BLIS style (gemm.go, pack.go, microkernel*.go), with an
// AVX2+FMA micro-kernel on amd64. Every tuned kernel keeps its naive
// loop-nest twin (GemmNaive, TrsmLowerLeftUnitNaive, ...) as the
// correctness oracle: the property tests pin the packed path against
// the naive one, and internal/sim models the performance of tuned BLAS
// independently of either.
package kernel

import (
	"errors"
	"fmt"
	"math"
)

// View describes a column-major submatrix: element (i,j) is
// Data[j*Stride+i]. It is the lingua franca between layouts and kernels.
type View struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// At returns element (i,j) of the view (bounds unchecked; test helper).
func (v View) At(i, j int) float64 { return v.Data[j*v.Stride+i] }

// Set stores element (i,j) of the view (bounds unchecked; test helper).
func (v View) Set(i, j int, x float64) { v.Data[j*v.Stride+i] = x }

// Sub returns the view of rows [i0,i1) x cols [j0,j1).
func (v View) Sub(i0, i1, j0, j1 int) View {
	return View{Rows: i1 - i0, Cols: j1 - j0, Stride: v.Stride, Data: v.Data[j0*v.Stride+i0:]}
}

// Getf2 computes an LU factorization with partial pivoting of the
// m x n view a (m >= n expected for panels), unblocked right-looking.
// On return a holds L (unit diagonal implicit) below and U on/above
// the diagonal, and piv[k] records the row swapped with row k at step
// k (LAPACK ipiv convention, 0-based). If a pivot column is exactly
// singular it returns a *SingularError whose K field is the number of
// fully factored leading columns — piv[0:K] remains valid, so callers
// like the tournament-pivoting fallback can keep the established
// prefix instead of aborting. Getf2 is the scalar oracle of the panel
// layer; the blocked Getrf produces bit-identical pivots and values.
//
//hsd:bitident
func Getf2(a View, piv []int) error {
	m, n := a.Rows, a.Cols
	steps := min(m, n)
	if len(piv) < steps {
		panic("kernel: getf2 piv too short")
	}
	for k := 0; k < steps; k++ {
		// Find pivot: largest |a(i,k)| for i >= k.
		col := a.Data[k*a.Stride:]
		p, vmax := k, math.Abs(col[k])
		for i := k + 1; i < m; i++ {
			if v := math.Abs(col[i]); v > vmax {
				p, vmax = i, v
			}
		}
		piv[k] = p
		//hsd:allow bitident exact-zero pivot test: singularity is an exact 0.0, no tolerance involved
		if vmax == 0 {
			return &SingularError{K: k}
		}
		if p != k {
			swapRows(a, k, p)
		}
		// Scale L column and update the trailing submatrix (rank-1).
		akk := col[k]
		inv := 1 / akk
		for i := k + 1; i < m; i++ {
			col[i] *= inv
		}
		for j := k + 1; j < n; j++ {
			akj := a.Data[j*a.Stride+k]
			cj := a.Data[j*a.Stride:]
			for i := k + 1; i < m; i++ {
				cj[i] -= col[i] * akj
			}
		}
	}
	return nil
}

// RecursiveLU computes the same factorization as Getf2 using Toledo's
// recursive formulation, which the paper uses as the sequential panel
// operator inside TSLU (section 3, "in our experiments we use
// recursive LU"). piv uses the same convention as Getf2. Leaves at or
// below the panelCrossover width run the blocked register-tiled Getrf
// (bit-identical to Getf2), and the supra-leaf solve and update steps
// ride the blocked TRSM and packed GEMM, so a tall panel factorization
// runs at matrix-matrix speed. Like Getf2 it reports an exactly
// singular pivot column as a *SingularError carrying the established
// prefix length; piv[0:K] is valid on return.
func RecursiveLU(a View, piv []int) error {
	ensureTuned()
	m, n := a.Rows, a.Cols
	steps := min(m, n)
	if steps <= panelCrossover {
		return Getrf(a, piv)
	}
	nl := steps / 2
	left := a.Sub(0, m, 0, nl)
	if err := RecursiveLU(left, piv[:nl]); err != nil {
		// The left half starts at column 0, so its established prefix is
		// already in global coordinates.
		return err
	}
	// Apply the left swaps to the right half, solve for U12, update A22.
	right := a.Sub(0, m, nl, n)
	for k := 0; k < nl; k++ {
		if piv[k] != k {
			swapRows(right, k, piv[k])
		}
	}
	l11 := a.Sub(0, nl, 0, nl)
	u12 := a.Sub(0, nl, nl, n)
	TrsmLowerLeftUnit(l11, u12)
	a21 := a.Sub(nl, m, 0, nl)
	a22 := a.Sub(nl, m, nl, n)
	Gemm(a22, a21, u12)
	l21 := a.Sub(nl, m, 0, nl)
	if err := RecursiveLU(a22, piv[nl:steps]); err != nil {
		// Globalize the right half's established prefix — offset its
		// pivots and replay their swaps on the left half exactly as the
		// success path does — so piv[0:nl+K] stays usable.
		var se *SingularError
		if !errors.As(err, &se) {
			return err
		}
		offsetRightPivots(l21, piv, nl, nl+se.K)
		return &SingularError{K: nl + se.K}
	}
	// Offset the recursion's pivots and apply them to the left half.
	offsetRightPivots(l21, piv, nl, steps)
	return nil
}

// offsetRightPivots converts the right-recursion pivots piv[k0:k1]
// (local to the trailing submatrix starting at row/column k0) into
// global indices and applies the corresponding row swaps to the left
// block l21.
func offsetRightPivots(l21 View, piv []int, k0, k1 int) {
	for k := k0; k < k1; k++ {
		piv[k] += k0
		if piv[k] != k {
			swapRows(l21, k-k0, piv[k]-k0)
		}
	}
}

// swapRows exchanges rows r1 and r2 across all columns of v.
func swapRows(v View, r1, r2 int) {
	for j := 0; j < v.Cols; j++ {
		off := j * v.Stride
		v.Data[off+r1], v.Data[off+r2] = v.Data[off+r2], v.Data[off+r1]
	}
}

// Laswp applies the row interchanges piv[k0:k1] (Getf2 convention) to
// v, forward order. Used to replay panel pivoting on other column
// blocks.
func Laswp(v View, piv []int, k0, k1 int) {
	for k := k0; k < k1; k++ {
		if piv[k] != k {
			swapRows(v, k, piv[k])
		}
	}
}

// LaswpInverse applies the interchanges in reverse order, undoing Laswp.
func LaswpInverse(v View, piv []int, k0, k1 int) {
	for k := k1 - 1; k >= k0; k-- {
		if piv[k] != k {
			swapRows(v, k, piv[k])
		}
	}
}

// GetrfNoPiv factors the view without pivoting (used on the b x b
// pivot block after tournament pivoting has moved the chosen rows into
// place). Returns an error on a zero diagonal. Blocks wide enough to
// amortize packing ride the same micro-panel + register-tiled sweep as
// Getrf, bit-identical to the unblocked scalar loop.
//
//hsd:bitident
func GetrfNoPiv(a View) error {
	ensureTuned()
	m, n := a.Rows, a.Cols
	steps := min(m, n)
	if useNaiveKernels || !panelBlockedWorthwhile(m, steps) {
		return getrfNoPivUnblocked(a, 0)
	}
	for j0 := 0; j0 < steps; j0 += pmr {
		w := min(pmr, steps-j0)
		if err := getrfNoPivUnblocked(a.Sub(j0, m, j0, j0+w), j0); err != nil {
			return err
		}
		if j0+w < n {
			trsmLowerLeftUnitNaive(a.Sub(j0, j0+w, j0, j0+w), a.Sub(j0, j0+w, j0+w, n))
			if j0+w < m {
				panelUpdate(a.Sub(j0+w, m, j0+w, n), a.Sub(j0+w, m, j0, j0+w), a.Sub(j0, j0+w, j0+w, n))
			}
		}
	}
	return nil
}

// getrfNoPivUnblocked is the scalar right-looking no-pivot LU, the
// oracle of the blocked path and its micro-panel operator. col0 offsets
// the error's reported column for micro-panel calls.
//
//hsd:bitident
func getrfNoPivUnblocked(a View, col0 int) error {
	n := min(a.Rows, a.Cols)
	for k := 0; k < n; k++ {
		akk := a.Data[k*a.Stride+k]
		//hsd:allow bitident exact-zero diagonal test: no-pivot LU fails only on an exact 0.0
		if akk == 0 {
			return fmt.Errorf("kernel: no-pivot LU zero diagonal at %d", col0+k)
		}
		inv := 1 / akk
		col := a.Data[k*a.Stride:]
		for i := k + 1; i < a.Rows; i++ {
			col[i] *= inv
		}
		for j := k + 1; j < a.Cols; j++ {
			akj := a.Data[j*a.Stride+k]
			cj := a.Data[j*a.Stride:]
			for i := k + 1; i < a.Rows; i++ {
				cj[i] -= col[i] * akj
			}
		}
	}
	return nil
}

// IdamaxCol returns the index (>= i0) of the entry with the largest
// absolute value in column j of v.
func IdamaxCol(v View, j, i0 int) int {
	col := v.Data[j*v.Stride:]
	p, vmax := i0, math.Abs(col[i0])
	for i := i0 + 1; i < v.Rows; i++ {
		if x := math.Abs(col[i]); x > vmax {
			p, vmax = i, x
		}
	}
	return p
}

// Copy copies src into dst element-wise; shapes must match.
func Copy(dst, src View) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("kernel: copy shape mismatch %dx%d <- %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < src.Cols; j++ {
		copy(dst.Data[j*dst.Stride:j*dst.Stride+dst.Rows], src.Data[j*src.Stride:j*src.Stride+src.Rows])
	}
}

// NormMax returns max |v_ij| over the view.
func NormMax(v View) float64 {
	m := 0.0
	for j := 0; j < v.Cols; j++ {
		for i := 0; i < v.Rows; i++ {
			if x := math.Abs(v.Data[j*v.Stride+i]); x > m {
				m = x
			}
		}
	}
	return m
}

// Potf2 computes the unblocked Cholesky factorization A = L*L^T of the
// symmetric positive definite n x n view (lower triangle referenced),
// storing L in the lower triangle. Returns an error if a non-positive
// pivot shows that the matrix is not positive definite.
func Potf2(a View) error {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("kernel: potf2 needs square input, got %dx%d", n, a.Cols))
	}
	for k := 0; k < n; k++ {
		akk := a.Data[k*a.Stride+k]
		for j := 0; j < k; j++ {
			v := a.Data[j*a.Stride+k]
			akk -= v * v
		}
		if akk <= 0 {
			return fmt.Errorf("kernel: potf2 non-positive pivot %g at %d", akk, k)
		}
		akk = math.Sqrt(akk)
		a.Data[k*a.Stride+k] = akk
		inv := 1 / akk
		for i := k + 1; i < n; i++ {
			s := a.Data[k*a.Stride+i]
			for j := 0; j < k; j++ {
				s -= a.Data[j*a.Stride+i] * a.Data[j*a.Stride+k]
			}
			a.Data[k*a.Stride+i] = s * inv
		}
	}
	return nil
}

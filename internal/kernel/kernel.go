// Package kernel implements the sequential micro-BLAS and LAPACK-style
// kernels that CALU and the baselines are built from: dgemm, dtrsm,
// unblocked Gaussian elimination with partial pivoting (dgetf2),
// Toledo's recursive LU, row interchanges (dlaswp) and small helpers.
//
// All routines operate on column-major storage described by a base
// slice and a leading dimension (stride), so they work unchanged on
// the column-major, block-cyclic and two-level block layouts in
// internal/layout: each of those exposes blocks as strided views.
//
// The implementations favour clarity and cache-friendly loop orders
// over platform-specific tuning; they are the correctness-bearing
// kernels, while internal/sim models the performance of tuned BLAS.
package kernel

import (
	"fmt"
	"math"
)

// View describes a column-major submatrix: element (i,j) is
// Data[j*Stride+i]. It is the lingua franca between layouts and kernels.
type View struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// At returns element (i,j) of the view (bounds unchecked; test helper).
func (v View) At(i, j int) float64 { return v.Data[j*v.Stride+i] }

// Set stores element (i,j) of the view (bounds unchecked; test helper).
func (v View) Set(i, j int, x float64) { v.Data[j*v.Stride+i] = x }

// Sub returns the view of rows [i0,i1) x cols [j0,j1).
func (v View) Sub(i0, i1, j0, j1 int) View {
	return View{Rows: i1 - i0, Cols: j1 - j0, Stride: v.Stride, Data: v.Data[j0*v.Stride+i0:]}
}

// blockK is the k-dimension blocking factor for Gemm. 64 columns of
// 8-byte elements keep the streamed A panel inside L1/L2 on anything
// resembling a modern core.
const blockK = 64

// Gemm computes C -= A * B (the only gemm variant dense LU needs:
// alpha=-1, beta=1), with A m x k, B k x n, C m x n.
//
// The loop nest is j-k-i with the inner loop running down a column of
// C and A, which is the unit-stride direction in column-major storage.
// The k dimension is blocked so the active panel of A stays in cache.
func Gemm(c, a, b View) {
	m, n, k := c.Rows, c.Cols, a.Cols
	if a.Rows != m || b.Rows != k || b.Cols != n {
		panic(fmt.Sprintf("kernel: gemm shape mismatch C %dx%d, A %dx%d, B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for k0 := 0; k0 < k; k0 += blockK {
		k1 := min(k0+blockK, k)
		for j := 0; j < n; j++ {
			cj := c.Data[j*c.Stride : j*c.Stride+m]
			for l := k0; l < k1; l++ {
				blj := b.Data[j*b.Stride+l]
				if blj == 0 {
					continue
				}
				al := a.Data[l*a.Stride : l*a.Stride+m]
				axpy(cj, al, -blj)
			}
		}
	}
}

// axpy computes y += alpha*x with 4-way unrolling.
func axpy(y, x []float64, alpha float64) {
	n := len(y)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// TrsmLowerLeftUnit solves L*X = B in place (B <- L^{-1} B), where L is
// unit lower triangular n x n and B is n x m. This is the "task U"
// kernel: U_KJ = L_KK^{-1} A_KJ.
func TrsmLowerLeftUnit(l, b View) {
	n, m := b.Rows, b.Cols
	if l.Rows != n || l.Cols != n {
		panic(fmt.Sprintf("kernel: trsmL shape mismatch L %dx%d, B %dx%d", l.Rows, l.Cols, n, m))
	}
	for j := 0; j < m; j++ {
		bj := b.Data[j*b.Stride : j*b.Stride+n]
		for k := 0; k < n; k++ {
			bkj := bj[k]
			if bkj == 0 {
				continue
			}
			lk := l.Data[k*l.Stride:]
			for i := k + 1; i < n; i++ {
				bj[i] -= lk[i] * bkj
			}
		}
	}
}

// TrsmUpperRight solves X*U = B in place (B <- B U^{-1}), where U is
// upper triangular (non-unit) n x n and B is m x n. This is the
// "task L" kernel: L_IK = A_IK U_KK^{-1}.
func TrsmUpperRight(u, b View) {
	m, n := b.Rows, b.Cols
	if u.Rows != n || u.Cols != n {
		panic(fmt.Sprintf("kernel: trsmU shape mismatch U %dx%d, B %dx%d", u.Rows, u.Cols, m, n))
	}
	for j := 0; j < n; j++ {
		bj := b.Data[j*b.Stride : j*b.Stride+m]
		// b_j -= sum_{k<j} b_k * u_kj
		for k := 0; k < j; k++ {
			ukj := u.Data[j*u.Stride+k]
			if ukj == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+m]
			axpy(bj, bk, -ukj)
		}
		ujj := u.Data[j*u.Stride+j]
		if ujj == 0 {
			panic("kernel: trsmU singular diagonal")
		}
		inv := 1 / ujj
		for i := range bj {
			bj[i] *= inv
		}
	}
}

// Getf2 computes an LU factorization with partial pivoting of the
// m x n view a (m >= n expected for panels), unblocked right-looking.
// On return a holds L (unit diagonal implicit) below and U on/above
// the diagonal, and piv[k] records the row swapped with row k at step
// k (LAPACK ipiv convention, 0-based). Returns an error only if the
// matrix is exactly singular in a pivot column.
func Getf2(a View, piv []int) error {
	m, n := a.Rows, a.Cols
	steps := min(m, n)
	if len(piv) < steps {
		panic("kernel: getf2 piv too short")
	}
	for k := 0; k < steps; k++ {
		// Find pivot: largest |a(i,k)| for i >= k.
		col := a.Data[k*a.Stride:]
		p, vmax := k, math.Abs(col[k])
		for i := k + 1; i < m; i++ {
			if v := math.Abs(col[i]); v > vmax {
				p, vmax = i, v
			}
		}
		piv[k] = p
		if vmax == 0 {
			return fmt.Errorf("kernel: getf2 singular at column %d", k)
		}
		if p != k {
			swapRows(a, k, p)
		}
		// Scale L column and update the trailing submatrix (rank-1).
		akk := col[k]
		inv := 1 / akk
		for i := k + 1; i < m; i++ {
			col[i] *= inv
		}
		for j := k + 1; j < n; j++ {
			akj := a.Data[j*a.Stride+k]
			if akj == 0 {
				continue
			}
			cj := a.Data[j*a.Stride:]
			for i := k + 1; i < m; i++ {
				cj[i] -= col[i] * akj
			}
		}
	}
	return nil
}

// rluCrossover is the column count below which RecursiveLU falls back
// to the unblocked kernel.
const rluCrossover = 16

// RecursiveLU computes the same factorization as Getf2 using Toledo's
// recursive formulation, which the paper uses as the sequential panel
// operator inside TSLU (section 3, "in our experiments we use
// recursive LU"). piv uses the same convention as Getf2.
func RecursiveLU(a View, piv []int) error {
	m, n := a.Rows, a.Cols
	steps := min(m, n)
	if steps <= rluCrossover {
		return Getf2(a, piv)
	}
	nl := steps / 2
	left := a.Sub(0, m, 0, nl)
	if err := RecursiveLU(left, piv[:nl]); err != nil {
		return err
	}
	// Apply the left swaps to the right half, solve for U12, update A22.
	right := a.Sub(0, m, nl, n)
	for k := 0; k < nl; k++ {
		if piv[k] != k {
			swapRows(right, k, piv[k])
		}
	}
	l11 := a.Sub(0, nl, 0, nl)
	u12 := a.Sub(0, nl, nl, n)
	TrsmLowerLeftUnit(l11, u12)
	a21 := a.Sub(nl, m, 0, nl)
	a22 := a.Sub(nl, m, nl, n)
	Gemm(a22, a21, u12)
	if err := RecursiveLU(a22, piv[nl:steps]); err != nil {
		return err
	}
	// Offset the recursion's pivots and apply them to the left half.
	l21 := a.Sub(nl, m, 0, nl)
	for k := nl; k < steps; k++ {
		piv[k] += nl
		if piv[k] != k {
			swapRows(l21, k-nl, piv[k]-nl)
		}
	}
	return nil
}

// swapRows exchanges rows r1 and r2 across all columns of v.
func swapRows(v View, r1, r2 int) {
	for j := 0; j < v.Cols; j++ {
		off := j * v.Stride
		v.Data[off+r1], v.Data[off+r2] = v.Data[off+r2], v.Data[off+r1]
	}
}

// Laswp applies the row interchanges piv[k0:k1] (Getf2 convention) to
// v, forward order. Used to replay panel pivoting on other column
// blocks.
func Laswp(v View, piv []int, k0, k1 int) {
	for k := k0; k < k1; k++ {
		if piv[k] != k {
			swapRows(v, k, piv[k])
		}
	}
}

// LaswpInverse applies the interchanges in reverse order, undoing Laswp.
func LaswpInverse(v View, piv []int, k0, k1 int) {
	for k := k1 - 1; k >= k0; k-- {
		if piv[k] != k {
			swapRows(v, k, piv[k])
		}
	}
}

// GetrfNoPiv factors the n x n view without pivoting (used on the b x b
// pivot block after tournament pivoting has moved the chosen rows into
// place). Returns an error on a zero diagonal.
func GetrfNoPiv(a View) error {
	n := min(a.Rows, a.Cols)
	for k := 0; k < n; k++ {
		akk := a.Data[k*a.Stride+k]
		if akk == 0 {
			return fmt.Errorf("kernel: no-pivot LU zero diagonal at %d", k)
		}
		inv := 1 / akk
		col := a.Data[k*a.Stride:]
		for i := k + 1; i < a.Rows; i++ {
			col[i] *= inv
		}
		for j := k + 1; j < a.Cols; j++ {
			akj := a.Data[j*a.Stride+k]
			if akj == 0 {
				continue
			}
			cj := a.Data[j*a.Stride:]
			for i := k + 1; i < a.Rows; i++ {
				cj[i] -= col[i] * akj
			}
		}
	}
	return nil
}

// IdamaxCol returns the index (>= i0) of the entry with the largest
// absolute value in column j of v.
func IdamaxCol(v View, j, i0 int) int {
	col := v.Data[j*v.Stride:]
	p, vmax := i0, math.Abs(col[i0])
	for i := i0 + 1; i < v.Rows; i++ {
		if x := math.Abs(col[i]); x > vmax {
			p, vmax = i, x
		}
	}
	return p
}

// Copy copies src into dst element-wise; shapes must match.
func Copy(dst, src View) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("kernel: copy shape mismatch %dx%d <- %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < src.Cols; j++ {
		copy(dst.Data[j*dst.Stride:j*dst.Stride+dst.Rows], src.Data[j*src.Stride:j*src.Stride+src.Rows])
	}
}

// NormMax returns max |v_ij| over the view.
func NormMax(v View) float64 {
	m := 0.0
	for j := 0; j < v.Cols; j++ {
		for i := 0; i < v.Rows; i++ {
			if x := math.Abs(v.Data[j*v.Stride+i]); x > m {
				m = x
			}
		}
	}
	return m
}

// Potf2 computes the unblocked Cholesky factorization A = L*L^T of the
// symmetric positive definite n x n view (lower triangle referenced),
// storing L in the lower triangle. Returns an error if a non-positive
// pivot shows that the matrix is not positive definite.
func Potf2(a View) error {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("kernel: potf2 needs square input, got %dx%d", n, a.Cols))
	}
	for k := 0; k < n; k++ {
		akk := a.Data[k*a.Stride+k]
		for j := 0; j < k; j++ {
			v := a.Data[j*a.Stride+k]
			akk -= v * v
		}
		if akk <= 0 {
			return fmt.Errorf("kernel: potf2 non-positive pivot %g at %d", akk, k)
		}
		akk = math.Sqrt(akk)
		a.Data[k*a.Stride+k] = akk
		inv := 1 / akk
		for i := k + 1; i < n; i++ {
			s := a.Data[k*a.Stride+i]
			for j := 0; j < k; j++ {
				s -= a.Data[j*a.Stride+i] * a.Data[j*a.Stride+k]
			}
			a.Data[k*a.Stride+i] = s * inv
		}
	}
	return nil
}

// TrsmRightLowerTrans solves X * L^T = B in place (B <- B L^{-T}), with
// L lower triangular non-unit n x n and B m x n — the TRSM variant of
// the tiled Cholesky panel.
func TrsmRightLowerTrans(l, b View) {
	m, n := b.Rows, b.Cols
	if l.Rows != n || l.Cols != n {
		panic(fmt.Sprintf("kernel: trsmRLT shape mismatch L %dx%d, B %dx%d", l.Rows, l.Cols, m, n))
	}
	for j := 0; j < n; j++ {
		bj := b.Data[j*b.Stride : j*b.Stride+m]
		for k := 0; k < j; k++ {
			ljk := l.Data[k*l.Stride+j] // L[j,k]
			if ljk == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+m]
			axpy(bj, bk, -ljk)
		}
		ljj := l.Data[j*l.Stride+j]
		if ljj == 0 {
			panic("kernel: trsmRLT singular diagonal")
		}
		inv := 1 / ljj
		for i := range bj {
			bj[i] *= inv
		}
	}
}

// GemmNT computes C -= A * B^T with A m x k, B n x k, C m x n — the
// symmetric-update kernel of tiled Cholesky (SYRK/GEMM applied to the
// lower triangle blockwise).
func GemmNT(c, a, b View) {
	m, n, k := c.Rows, c.Cols, a.Cols
	if a.Rows != m || b.Rows != n || b.Cols != k {
		panic(fmt.Sprintf("kernel: gemmNT shape mismatch C %dx%d, A %dx%d, B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for j := 0; j < n; j++ {
		cj := c.Data[j*c.Stride : j*c.Stride+m]
		for l := 0; l < k; l++ {
			bjl := b.Data[l*b.Stride+j]
			if bjl == 0 {
				continue
			}
			al := a.Data[l*a.Stride : l*a.Stride+m]
			axpy(cj, al, -bjl)
		}
	}
}

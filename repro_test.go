package repro

import (
	"strings"
	"testing"
)

func TestPublicFactorAndSolve(t *testing.T) {
	a := RandomMatrix(200, 200, 5)
	f, err := Factor(a, Options{
		Layout: LayoutBlockCyclic, Block: 32, Workers: 3,
		Scheduler: ScheduleHybrid, DynamicRatio: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, f); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
	b := make([]float64, 200)
	for i := range b {
		b[i] = float64(i)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := SolveResidual(a, x, b); r > 1e-10 {
		t.Fatalf("solve residual %g", r)
	}
}

func TestPublicEngine(t *testing.T) {
	eng, err := NewEngine(EngineOptions{Workers: 2, MaxInflight: 4, DynamicRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	a := RandomMatrix(128, 128, 9)
	job, err := eng.SubmitFactor(a, Options{
		Block: 32, Workers: 2, Scheduler: ScheduleHybrid, DynamicRatio: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if job.Granted() < 1 {
		t.Fatalf("granted %d workers", job.Granted())
	}
	f := job.Factorization()
	if r := Residual(a, f); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
	b := make([]float64, 128)
	for i := range b {
		b[i] = float64(i % 7)
	}
	sj, err := eng.SubmitSolve(f, b, Options{Block: 32, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sj.Wait(); err != nil {
		t.Fatal(err)
	}
	if r := SolveResidual(a, sj.Solution(), b); r > 1e-10 {
		t.Fatalf("solve residual %g", r)
	}
	if st := eng.Stats(); st.JobsDone != 2 || st.JobsFailed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPublicBaselines(t *testing.T) {
	a := RandomMatrix(160, 160, 6)
	g, err := FactorGEPP(a, GEPPOptions{Block: 32, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, g); r > 1e-10 {
		t.Fatalf("GEPP residual %g", r)
	}
	b := make([]float64, 160)
	for i := range b {
		b[i] = 1
	}
	x, err := SolveIncPiv(a, b, IncPivOptions{Block: 32, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r := SolveResidual(a, x, b); r > 1e-8 {
		t.Fatalf("incpiv residual %g", r)
	}
}

func TestPublicMachines(t *testing.T) {
	if IntelXeon16().Cores() != 16 || AMDOpteron48().Cores() != 48 {
		t.Fatal("machine models wrong")
	}
}

func TestPublicExperimentList(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 18 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
}

func TestPublicRunExperiment(t *testing.T) {
	out, err := RunExperiment("table1", 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "BCL / static") {
		t.Fatalf("unexpected table1 output:\n%s", out)
	}
}

func TestPublicTheoremParams(t *testing.T) {
	p := TheoremParams{T1: 100, P: 10, DeltaMax: 2, DeltaAvg: 1}
	if fs := p.MaxStaticFraction(); fs <= 0 || fs >= 1 {
		t.Fatalf("fs = %g", fs)
	}
}

func TestPublicReference(t *testing.T) {
	a := RandomMatrix(64, 64, 8)
	f, err := ReferenceLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, f); r > 1e-11 {
		t.Fatalf("reference residual %g", r)
	}
}

func TestPublicCholesky(t *testing.T) {
	a := RandomSPD(120, 4)
	f, err := FactorCholesky(a, Options{Layout: LayoutBlockCyclic, Block: 24, Workers: 3, Scheduler: ScheduleHybrid, DynamicRatio: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if r := CholeskyResidual(a, f); r > 1e-12 {
		t.Fatalf("cholesky residual %g", r)
	}
	b := make([]float64, 120)
	for i := range b {
		b[i] = 1
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := SolveResidual(a, x, b); r > 1e-12 {
		t.Fatalf("cholesky solve residual %g", r)
	}
}

// Linear-system workbench: solve the same dense system with all three
// factorization engines the repository implements — CALU (the paper's
// algorithm), the MKL-style GEPP baseline and the PLASMA-style
// incremental-pivoting baseline — and compare accuracy and structure.
// This mirrors the motivation of the paper's introduction: many
// applications spend their time inside exactly this routine.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	const n = 640

	a := repro.RandomMatrix(n, n, 7)
	// Manufactured solution: x_true = (1, -1, 1, -1, ...).
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = 1 - 2*float64(i%2)
	}
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		col := a.Col(j)
		for i := 0; i < n; i++ {
			b[i] += col[i] * xTrue[j]
		}
	}
	maxErr := func(x []float64) float64 {
		e := 0.0
		for i := range x {
			e = math.Max(e, math.Abs(x[i]-xTrue[i]))
		}
		return e
	}

	// 1. CALU with hybrid scheduling (the paper's contribution).
	f, err := repro.Factor(a, repro.Options{
		Layout: repro.LayoutBlockCyclic, Block: 64, Workers: 4,
		Scheduler: repro.ScheduleHybrid, DynamicRatio: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	x1, err := f.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CALU hybrid(10%%):      residual %.2e, max error %.2e, %v\n",
		repro.SolveResidual(a, x1, b), maxErr(x1), f.Makespan)

	// 1b. The same solve through the blocked multi-RHS graph: many
	// right-hand sides at once, GEMM carrying the flops, same hybrid
	// scheduling machinery as the factorization.
	const nrhs = 8
	bm := repro.NewMatrix(n, nrhs)
	for j := 0; j < nrhs; j++ {
		copy(bm.Col(j), b)
	}
	xm, err := f.SolveMany(bm, repro.Options{
		Block: 64, Workers: 4, Scheduler: repro.ScheduleHybrid, DynamicRatio: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CALU blocked solve:    residual %.2e, max error %.2e (%d RHS at once)\n",
		repro.SolveResidual(a, xm.Col(nrhs-1), b), maxErr(xm.Col(0)), nrhs)

	// 2. MKL-style blocked GEPP (sequential panel on the critical path).
	g, err := repro.FactorGEPP(a, repro.GEPPOptions{Block: 64, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	x2, err := g.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MKL-style GEPP:        residual %.2e, max error %.2e, %v\n",
		repro.SolveResidual(a, x2, b), maxErr(x2), g.Makespan)

	// 3. PLASMA-style incremental pivoting (panel off the critical path,
	// weaker pivoting).
	x3, err := repro.SolveIncPiv(a, b, repro.IncPivOptions{Block: 64, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PLASMA-style incpiv:   residual %.2e, max error %.2e\n",
		repro.SolveResidual(a, x3, b), maxErr(x3))

	fmt.Println("\nAll three engines agree; the paper's point is about their parallel behaviour,")
	fmt.Println("which `hsdbench -exp fig16` / `fig17` reproduce on the simulated machines.")
}

// Noise study: inject synthetic OS interference (the paper's delta_i)
// into real factorizations and watch the scheduling strategies react —
// static suffers the full imbalance, hybrid absorbs it with its dynamic
// section. This is the section 6 story on live goroutines, and it
// closes with Theorem 1's projection for larger machines.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/model"
	"repro/internal/noise"
)

func main() {
	const n, b, workers = 768, 64, 4
	a := repro.RandomMatrix(n, n, 9)

	measure := func(label string, sched repro.Options, gen noise.Generator) time.Duration {
		opt := sched
		if gen != nil {
			opt.Noise = noise.RealAdapter(gen, 2*time.Millisecond)
		}
		f, err := repro.Factor(a, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %v (residual %.1e)\n", label, f.Makespan.Round(time.Millisecond), repro.Residual(a, f))
		return f.Makespan
	}

	static := repro.Options{Layout: repro.LayoutBlockCyclic, Block: b, Workers: workers, Scheduler: repro.ScheduleStatic}
	hybrid := static
	hybrid.Scheduler = repro.ScheduleHybrid
	hybrid.DynamicRatio = 0.2

	fmt.Println("quiet machine:")
	sq := measure("static", static, nil)
	hq := measure("static(20% dynamic)", hybrid, nil)

	fmt.Println("with injected noise bursts (Poisson 80/s x 2ms on every worker):")
	sn := measure("static", static, noise.NewPoisson(80, 2e-3, 1))
	hn := measure("static(20% dynamic)", hybrid, noise.NewPoisson(80, 2e-3, 2))

	fmt.Printf("\nslowdown under noise: static %.2fx, hybrid %.2fx\n",
		float64(sn)/float64(sq), float64(hn)/float64(hq))
	fmt.Println("(the hybrid's dynamic section absorbs part of the imbalance, as section 6 predicts)")

	// Theorem 1 projection from these observations.
	params := model.Params{
		T1:       sq.Seconds() * float64(workers),
		P:        workers,
		DeltaMax: (sn - sq).Seconds(),
		DeltaAvg: (sn - sq).Seconds() / 3,
	}
	fmt.Printf("\nTheorem 1 with the measured deltas: max static fraction fs <= %.2f\n",
		params.MaxStaticFraction())
	for _, proj := range model.ProjectExascale(params, []int{workers, 16, 64, 256}, func(p int) float64 {
		return float64(p) / float64(workers)
	}) {
		fmt.Printf("  %4d cores -> minimum dynamic share %.0f%%\n", proj.Cores, proj.MinDynamicPct)
	}
}

// Example service: a batch-solve workload — many small-to-medium
// matrices, each factored once and solved against a right-hand side —
// pushed through the resident engine, versus the spawn-workers-per-call
// baseline (every Factor call standing up and tearing down its own
// goroutines and workspaces). This is the traffic shape the engine
// exists for; it prints jobs/sec for both modes and the speedup.
//
//	go run ./examples/service -jobs 48 -min 256 -max 1024 -pool 8 -dratio 0.25
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro"
)

// workload is one batch item: a matrix and its right-hand side.
type workload struct {
	n   int
	a   *repro.Matrix
	b   []float64
	opt repro.Options
}

func buildWorkload(jobs, minN, maxN, share int, seed int64) []workload {
	rng := rand.New(rand.NewSource(seed))
	w := make([]workload, jobs)
	for i := range w {
		n := minN
		if maxN > minN {
			// Mixed sizes: mostly small, some large — the imbalance the
			// engine's dynamic share absorbs.
			n += rng.Intn(maxN - minN + 1)
			n -= n % 64
			if n < minN {
				n = minN
			}
		}
		b := make([]float64, n)
		for k := range b {
			b[k] = rng.NormFloat64()
		}
		w[i] = workload{
			n: n,
			a: repro.RandomMatrix(n, n, int64(1000+i)),
			b: b,
			opt: repro.Options{
				Block: 64, Workers: share,
				Scheduler: repro.ScheduleHybrid, DynamicRatio: 0.1,
			},
		}
	}
	return w
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "service: %v\n", err)
		os.Exit(1)
	}
}

// runEngine pushes the whole batch through one resident engine.
func runEngine(work []workload, pool int, dratio float64) time.Duration {
	eng, err := repro.NewEngine(repro.EngineOptions{
		Workers: pool, MaxInflight: 2 * pool, DynamicRatio: dratio,
	})
	check(err)
	defer eng.Close()

	start := time.Now()
	jobs := make([]*repro.EngineJob, len(work))
	for i, w := range work {
		j, err := eng.SubmitFactor(w.a, w.opt) // blocks at the admission bound
		check(err)
		jobs[i] = j
	}
	for i, j := range jobs {
		check(j.Wait())
		sj, err := eng.SubmitSolve(j.Factorization(), work[i].b, work[i].opt)
		check(err)
		check(sj.Wait())
		if r := repro.SolveResidual(work[i].a, sj.Solution(), work[i].b); r > 1e-9 {
			check(fmt.Errorf("job %d residual %g", i, r))
		}
	}
	return time.Since(start)
}

// runSpawn is the baseline: the same concurrency (inflight bound), but
// every call spawns its own workers and tears them down.
func runSpawn(work []workload, pool int) time.Duration {
	sem := make(chan struct{}, 2*pool)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(work))
	for i := range work {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			w := work[i]
			f, err := repro.Factor(w.a, w.opt)
			if err != nil {
				errs[i] = err
				return
			}
			x, err := f.Solve(w.b)
			if err != nil {
				errs[i] = err
				return
			}
			if r := repro.SolveResidual(w.a, x, w.b); r > 1e-9 {
				errs[i] = fmt.Errorf("residual %g", r)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		check(err)
	}
	return time.Since(start)
}

func main() {
	jobs := flag.Int("jobs", 32, "batch size")
	minN := flag.Int("min", 256, "smallest matrix dimension")
	maxN := flag.Int("max", 1024, "largest matrix dimension")
	pool := flag.Int("pool", 4, "resident pool size / baseline concurrency")
	share := flag.Int("share", 2, "static worker share requested per job")
	dratio := flag.Float64("dratio", 0.25, "inter-job dynamic ratio")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	work := buildWorkload(*jobs, *minN, *maxN, *share, *seed)
	var cells int
	for _, w := range work {
		cells += w.n * w.n
	}
	fmt.Printf("batch: %d factor+solve jobs, %d..%d, %.1f MB of matrices\n",
		len(work), *minN, *maxN, float64(cells)*8/1e6)

	spawn := runSpawn(work, *pool)
	fmt.Printf("spawn-per-call : %8.1f ms  %6.2f jobs/s\n",
		spawn.Seconds()*1e3, float64(len(work))/spawn.Seconds())

	resident := runEngine(work, *pool, *dratio)
	fmt.Printf("resident engine: %8.1f ms  %6.2f jobs/s  (%.2fx)\n",
		resident.Seconds()*1e3, float64(len(work))/resident.Seconds(),
		spawn.Seconds()/resident.Seconds())
}

// Quickstart: factor a matrix with hybrid static/dynamic CALU, check
// the backward error, and solve a linear system — the five-minute tour
// of the library's public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 768

	// A reproducible random test matrix.
	a := repro.RandomMatrix(n, n, 42)

	// Factor PA = LU with the paper's recommended configuration: block
	// cyclic layout, hybrid scheduling with a 10% dynamic share.
	f, err := repro.Factor(a, repro.Options{
		Layout:       repro.LayoutBlockCyclic,
		Block:        64,
		Workers:      4,
		Scheduler:    repro.ScheduleHybrid,
		DynamicRatio: 0.10,
	})
	if err != nil {
		log.Fatal(err)
	}
	gflops := 2.0 / 3.0 * float64(n) * float64(n) * float64(n) / f.Makespan.Seconds() / 1e9
	fmt.Printf("factored %dx%d in %v (%.2f Gflop/s)\n", n, n, f.Makespan, gflops)
	fmt.Printf("tasks: %d total, %d scheduled statically, %d dynamically\n",
		f.Stats.Total, f.Stats.StaticTask, f.Stats.DynTask)
	fmt.Printf("backward error ||PA-LU|| = %.2e\n", repro.Residual(a, f))

	// Solve A x = b for a right-hand side of ones.
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x, err := f.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve residual ||Ax-b|| = %.2e\n", repro.SolveResidual(a, x, b))

	// Compare against the sequential reference factorization.
	ref, err := repro.ReferenceLU(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference GEPP backward error = %.2e (tournament pivoting is comparable)\n",
		repro.Residual(a, ref))
}

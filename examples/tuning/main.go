// Tuning: sweep the paper's dratio knob on the current machine (real
// goroutine execution) and report the best dynamic share — the
// practical recipe of section 5.1 ("we determine the best percentage of
// the dynamic part by running variations of the algorithm with
// different dynamic percentages").
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro"
)

func main() {
	const n, b = 1024, 64
	workers := runtime.GOMAXPROCS(0)
	a := repro.RandomMatrix(n, n, 3)
	flops := 2.0 / 3.0 * float64(n) * float64(n) * float64(n)

	fmt.Printf("sweeping dratio on this machine: n=%d b=%d workers=%d\n\n", n, b, workers)
	fmt.Printf("%-22s %12s %10s\n", "configuration", "time", "Gflop/s")

	run := func(label string, opt repro.Options) time.Duration {
		// Median of three runs to damp OS noise on a shared machine.
		var times []time.Duration
		for rep := 0; rep < 3; rep++ {
			f, err := repro.Factor(a, opt)
			if err != nil {
				log.Fatal(err)
			}
			times = append(times, f.Makespan)
		}
		if times[0] > times[1] {
			times[0], times[1] = times[1], times[0]
		}
		if times[1] > times[2] {
			times[1], times[2] = times[2], times[1]
		}
		best := times[1]
		fmt.Printf("%-22s %12v %10.2f\n", label, best.Round(time.Millisecond), flops/best.Seconds()/1e9)
		return best
	}

	base := repro.Options{Layout: repro.LayoutBlockCyclic, Block: b, Workers: workers}

	stOpt := base
	stOpt.Scheduler = repro.ScheduleStatic
	bestT := run("static", stOpt)
	bestLabel := "static"

	for _, d := range []float64{0.1, 0.2, 0.3, 0.5} {
		opt := base
		opt.Scheduler = repro.ScheduleHybrid
		opt.DynamicRatio = d
		t := run(fmt.Sprintf("static(%.0f%% dynamic)", 100*d), opt)
		if t < bestT {
			bestT, bestLabel = t, fmt.Sprintf("static(%.0f%% dynamic)", 100*d)
		}
	}

	dyOpt := base
	dyOpt.Scheduler = repro.ScheduleDynamic
	if t := run("dynamic", dyOpt); t < bestT {
		bestT, bestLabel = t, "dynamic"
	}

	fmt.Printf("\nbest on this machine: %s (%v)\n", bestLabel, bestT.Round(time.Millisecond))
	fmt.Println("(the paper finds 10% dynamic is usually the sweet spot on its 16- and 48-core machines)")
}

// Package repro is the public facade of the reproduction of Donfack,
// Grigori, Gropp and Kale, "Hybrid static/dynamic scheduling for
// already optimized dense matrix factorization" (IPDPS 2012).
//
// The library implements communication-avoiding LU factorization
// (CALU) with tournament pivoting over three data layouts (column
// major, block cyclic, two-level blocks), scheduled by fully static,
// fully dynamic, hybrid static/dynamic (the paper's contribution) or
// work-stealing policies; the MKL-style and PLASMA-style baselines the
// paper compares against; a discrete-event simulator of the paper's two
// evaluation machines; and the experiment harness that regenerates
// every figure and table of the evaluation section.
//
// Quick start:
//
//	a := repro.RandomMatrix(1024, 1024, 42)
//	f, err := repro.Factor(a, repro.Options{
//		Layout:       repro.LayoutBlockCyclic,
//		Workers:      8,
//		Scheduler:    repro.ScheduleHybrid,
//		DynamicRatio: 0.1, // the paper's usual sweet spot
//	})
//	x, err := f.Solve(b)
//
// For many small-to-medium factorizations, prefer the resident engine,
// which amortizes worker and workspace setup across jobs and applies
// the hybrid static/dynamic split a second time — across competing
// jobs:
//
//	eng, err := repro.NewEngine(repro.EngineOptions{Workers: 8, DynamicRatio: 0.25})
//	defer eng.Close()
//	job, err := eng.SubmitFactor(a, repro.Options{Workers: 2})
//	err = job.Wait()
//	f := job.Factorization()
//
// Solves are first-class pool citizens too: a solve executes as a
// blocked two-sweep triangular-solve task graph (diagonal TRSM tasks
// plus packed-GEMM right-hand-side updates) under the same hybrid
// static/dynamic scheduling as the factorizations, so a solve-heavy
// service parallelizes its solves instead of burning one worker each.
// Multi-RHS solves put GEMM — not GEMV — on the flop path:
//
//	X, err := f.SolveMany(B, repro.Options{Workers: 4})        // one-shot
//	job, err := eng.SubmitSolveMany(f, B, repro.Options{Workers: 4})
//
// Engine admission is traffic-shaped: small jobs ride an express lane
// and are fused into one composite DAG sharing a single reservation,
// big jobs are bounded to a share of the pool, and jobs may carry a
// deadline (Options.Deadline) — lanes are laxity-ordered and
// infeasible submissions are shed with ErrEngineDeadlineInfeasible
// before queueing. SubmitFactorCtx and friends bind admission to a
// context so queued work can be cancelled.
//
// See DESIGN.md for the system inventory; README.md and CHANGES.md
// carry the measured-performance record.
package repro

import (
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/layout"
	"repro/internal/mat"
	"repro/internal/model"
	"repro/internal/sim"
)

// Matrix is a dense column-major matrix.
type Matrix = mat.Dense

// NewMatrix allocates an r x c zero matrix.
func NewMatrix(r, c int) *Matrix { return mat.New(r, c) }

// RandomMatrix returns an r x c matrix with uniform entries in [-1,1)
// drawn from a deterministic seed.
func RandomMatrix(r, c int, seed int64) *Matrix {
	return mat.Random(r, c, rand.New(rand.NewSource(seed)))
}

// Layout kinds (paper section 4).
const (
	// LayoutColMajor is the classic LAPACK column-major storage ("CM").
	LayoutColMajor = layout.CM
	// LayoutBlockCyclic is the block cyclic layout ("BCL").
	LayoutBlockCyclic = layout.BCL
	// LayoutTwoLevel is the two-level block layout ("2l-BL").
	LayoutTwoLevel = layout.TwoLevel
)

// Scheduling strategies (paper Table 1).
const (
	// ScheduleStatic is fully static owner-computes scheduling.
	ScheduleStatic = core.ScheduleStatic
	// ScheduleDynamic is fully dynamic shared-queue scheduling.
	ScheduleDynamic = core.ScheduleDynamic
	// ScheduleHybrid is the paper's hybrid static/dynamic strategy.
	ScheduleHybrid = core.ScheduleHybrid
	// ScheduleWorkStealing is randomized work stealing (section 8).
	ScheduleWorkStealing = core.ScheduleWorkStealing
)

// Options configures Factor. See core.Options for field documentation.
type Options = core.Options

// Factorization is the result of Factor: PA = LU plus run metadata.
type Factorization = core.Factorization

// Factor computes the CALU factorization of a with the requested
// layout, block size, worker count and scheduling strategy.
func Factor(a *Matrix, opt Options) (*Factorization, error) { return core.Factor(a, opt) }

// Residual returns the normalized backward error ||PA-LU|| of a
// factorization; values near machine epsilon indicate success.
func Residual(a *Matrix, f *Factorization) float64 { return core.Residual(a, f) }

// SolveResidual returns the normalized residual of a solve.
func SolveResidual(a *Matrix, x, b []float64) float64 { return core.SolveResidual(a, x, b) }

// Solution is the result of a blocked multi-RHS solve: the solution
// block plus run metadata.
type Solution = core.Solution

// SolveJob is a prepared blocked triangular solve (see
// Factorization.PrepareSolve / CholeskyFactorization.PrepareSolve),
// the solve counterpart of a prepared factorization.
type SolveJob = core.SolveJob

// SingularSolveError reports a solve against a degraded factorization
// (a zero diagonal in the triangular factor); it carries the
// factored-prefix length, i.e. how much of the system is solvable.
type SingularSolveError = core.SingularSolveError

// ReferenceLU is the sequential GEPP oracle.
func ReferenceLU(a *Matrix) (*Factorization, error) { return core.ReferenceLU(a) }

// GEPPOptions configures the MKL-style baseline.
type GEPPOptions = baseline.GEPPOptions

// FactorGEPP runs the MKL-style blocked LU baseline (sequential panel).
func FactorGEPP(a *Matrix, opt GEPPOptions) (*Factorization, error) {
	return baseline.FactorGEPP(a, opt)
}

// IncPivOptions configures the PLASMA-style baseline.
type IncPivOptions = baseline.IncPivOptions

// SolveIncPiv solves A x = b with the PLASMA-style incremental-pivoting
// tiled LU baseline.
func SolveIncPiv(a *Matrix, b []float64, opt IncPivOptions) ([]float64, error) {
	x, _, err := baseline.SolveIncPiv(a, b, opt)
	return x, err
}

// Machine is a simulated platform model.
type Machine = sim.Machine

// IntelXeon16 models the paper's 16-core Intel Xeon machine.
func IntelXeon16() Machine { return sim.IntelXeon16() }

// AMDOpteron48 models the paper's 48-core AMD Opteron NUMA machine.
func AMDOpteron48() Machine { return sim.AMDOpteron48() }

// TheoremParams are the inputs of the paper's Theorem 1 (section 6).
type TheoremParams = model.Params

// ExperimentIDs lists every reproducible experiment (fig1..fig17,
// table1, thm1, exascale, ablation) in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one experiment by id at the given scale
// (1.0 = paper-sized matrices) and returns its rendered table.
func RunExperiment(id string, scale float64, seed int64) (string, error) {
	tbl, err := experiments.Run(id, scale, seed)
	if err != nil {
		return "", err
	}
	return tbl.String(), nil
}

// CholeskyFactorization is the result of FactorCholesky: A = L*L^T.
type CholeskyFactorization = core.CholeskyFactorization

// FactorCholesky factors a symmetric positive definite matrix with
// tiled Cholesky under the same layouts and hybrid static/dynamic
// scheduling as CALU — the paper's section 9 future-work item.
func FactorCholesky(a *Matrix, opt Options) (*CholeskyFactorization, error) {
	return core.FactorCholesky(a, opt)
}

// CholeskyResidual returns ||A - L L^T|| normalized.
func CholeskyResidual(a *Matrix, f *CholeskyFactorization) float64 {
	return core.CholeskyResidual(a, f)
}

// RandomSPD returns a random symmetric positive definite matrix for
// Cholesky workloads.
func RandomSPD(n int, seed int64) *Matrix { return core.RandomSPD(n, seed) }

// Engine is the resident factorization service: one long-lived worker
// pool executing many Factor/Solve jobs concurrently, with the paper's
// hybrid static/dynamic split applied across jobs (each job gets a
// static reservation of workers; the pool's dynamic share lends itself
// to whichever job has spare parallel work). Create with NewEngine,
// feed with SubmitFactor/SubmitSolve, Close when done.
type Engine = engine.Engine

// EngineOptions configures NewEngine: pool size, admission bound and
// the inter-job DynamicRatio (0 = fully static partitioning, 1 = fully
// dynamic lending).
type EngineOptions = engine.Options

// EngineJob is the handle of one submitted engine job; Wait for
// completion, then read Factorization, CholeskyFactorization, Solution
// or SolutionMatrix.
type EngineJob = engine.Job

// Solvable is a completed factorization the engine can schedule a
// blocked solve graph for: *Factorization and *CholeskyFactorization
// both qualify.
type Solvable = engine.Solvable

// EngineStats is a point-in-time snapshot of an engine's pool and job
// counters.
type EngineStats = engine.Stats

// JobClass labels a job for the engine's two-lane admission: small
// jobs ride an express lane and may be fused into one composite DAG
// sharing a single worker reservation; large jobs queue in a lane
// bounded to a share of the pool. Set on Options.Class; ClassAuto lets
// the engine classify by estimated flop count.
type JobClass = core.JobClass

// Job classes for Options.Class.
const (
	ClassAuto  = core.ClassAuto
	ClassSmall = core.ClassSmall
	ClassLarge = core.ClassLarge
)

// EngineClassStats is the per-class slice of EngineStats: completion
// counts, live queue depth and recent submit-to-done latency
// percentiles.
type EngineClassStats = engine.ClassStats

// Engine submission errors.
var (
	ErrEngineClosed    = engine.ErrClosed
	ErrEngineSaturated = engine.ErrSaturated
	// ErrEngineDeadlineInfeasible is returned (wrapped) by submissions
	// whose Options.Deadline cannot be met even by the engine's own
	// service-time estimate; such jobs are shed at admission without
	// consuming a worker reservation. Detect with errors.Is.
	ErrEngineDeadlineInfeasible = engine.ErrDeadlineInfeasible
)

// NewEngine starts a resident engine; its workers and kernel
// workspaces live until Close.
func NewEngine(opt EngineOptions) (*Engine, error) { return engine.New(opt) }

// ClusterRouter is the sharded serving tier's front door: it
// consistent-hashes factorization keys across engine shards, factors
// each key on its owner, replicates the serialized factorization for
// solve read-scaling, and handles shard join, drain and failure. Serve
// its Handler behind an HTTP listener (cmd/hsdrouter does exactly
// that).
type ClusterRouter = cluster.Router

// ClusterShardInfo names one engine shard and where to reach it.
type ClusterShardInfo = cluster.ShardInfo

// ClusterRouterOptions configures NewClusterRouter: initial shards,
// replication factor, ring virtual nodes, health probing and body
// caps.
type ClusterRouterOptions = cluster.RouterOptions

// NewClusterRouter builds a cluster router over running hsdserve
// shards.
func NewClusterRouter(opt ClusterRouterOptions) (*ClusterRouter, error) {
	return cluster.NewRouter(opt)
}

// EncodeFactorization serializes a factorization (exactly one of lu,
// chol) into the cluster wire format: pivots plus packed factor blocks,
// bit-exact, as shipped between shards for replication and migration.
func EncodeFactorization(lu *Factorization, chol *CholeskyFactorization) ([]byte, error) {
	return cluster.EncodeFactorization(lu, chol)
}

// DecodeFactorization inverts EncodeFactorization; the result carries
// the factors and permutation only (run metadata does not travel).
func DecodeFactorization(data []byte) (*Factorization, *CholeskyFactorization, error) {
	return cluster.DecodeFactorization(data)
}

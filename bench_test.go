// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (run `go test -bench=. -benchmem`), plus kernel
// and end-to-end factorization benchmarks. The figure benchmarks run
// the same generators as `cmd/hsdbench` at a reduced scale so the whole
// suite completes in minutes; `hsdbench -exp <id>` reproduces them at
// paper scale. Each figure benchmark reports the headline metric of its
// figure as a custom unit next to ns/op.
package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/kernel"
	"repro/internal/layout"
	"repro/internal/mat"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/sim"
)

// benchScale keeps figure regeneration fast inside `go test -bench`.
const benchScale = 0.4

// runExperiment executes one experiment generator per iteration and
// reports a headline metric extracted from the resulting table.
func runExperimentBench(b *testing.B, id string, metric func(*experiments.Table) (float64, string)) {
	b.Helper()
	var tbl *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.Run(id, benchScale, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	if metric != nil {
		v, unit := metric(tbl)
		b.ReportMetric(v, unit)
	}
}

// cell parses the numeric prefix of a table cell ("123.4", "+56.7%",
// "95% of makespan").
func cell(tbl *experiments.Table, row, col int) float64 {
	s := strings.TrimPrefix(strings.TrimSpace(tbl.Rows[row][col]), "+")
	end := 0
	for end < len(s) && (s[end] == '-' || s[end] == '.' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		panic(fmt.Sprintf("bench: unparseable cell %q", tbl.Rows[row][col]))
	}
	return v
}

func lastRow(tbl *experiments.Table) int { return len(tbl.Rows) - 1 }

// ---------------------------------------------------------------------
// One benchmark per figure/table.

func BenchmarkFig01StaticProfile(b *testing.B) {
	runExperimentBench(b, "fig1", func(t *experiments.Table) (float64, string) {
		return cell(t, 2, 1), "idle%"
	})
}

func BenchmarkFig04HybridProfile(b *testing.B) {
	runExperimentBench(b, "fig4", func(t *experiments.Table) (float64, string) {
		return cell(t, 2, 1), "idle%"
	})
}

func BenchmarkFig06IntelBCL(b *testing.B) {
	runExperimentBench(b, "fig6", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 2), "h10-Gflops"
	})
}

func BenchmarkFig07AMDBCL(b *testing.B) {
	runExperimentBench(b, "fig7", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 2), "h10-Gflops"
	})
}

func BenchmarkFig08AMDImprovementBCL(b *testing.B) {
	runExperimentBench(b, "fig8", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 2), "h10-vs-static-%"
	})
}

func BenchmarkFig09Intel2lBL(b *testing.B) {
	runExperimentBench(b, "fig9", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 2), "h10-Gflops"
	})
}

func BenchmarkFig10AMD2lBL(b *testing.B) {
	runExperimentBench(b, "fig10", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 2), "h10-Gflops"
	})
}

func BenchmarkFig11AMDImprovement2lBL(b *testing.B) {
	runExperimentBench(b, "fig11", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 3), "h10-vs-dynamic-%"
	})
}

func BenchmarkFig12IntelSummary(b *testing.B) {
	runExperimentBench(b, "fig12", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 2), "BCL-h10-Gflops"
	})
}

func BenchmarkFig13AMDSummary(b *testing.B) {
	runExperimentBench(b, "fig13", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 2), "BCL-h10-Gflops"
	})
}

func BenchmarkFig14DynamicCMProfile(b *testing.B) {
	runExperimentBench(b, "fig14", func(t *experiments.Table) (float64, string) {
		// "90% of workers permanently idle at" row, % of makespan.
		return cell(t, 3, 1), "idle-point-%"
	})
}

func BenchmarkFig15Hybrid2lBLProfile(b *testing.B) {
	runExperimentBench(b, "fig15", func(t *experiments.Table) (float64, string) {
		return cell(t, 2, 1), "idle%"
	})
}

func BenchmarkFig16IntelVsLibraries(b *testing.B) {
	runExperimentBench(b, "fig16", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 5), "vs-MKL-%"
	})
}

func BenchmarkFig17AMDVsLibraries(b *testing.B) {
	runExperimentBench(b, "fig17", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 5), "vs-MKL-%"
	})
}

func BenchmarkTable1DesignSpace(b *testing.B) {
	runExperimentBench(b, "table1", func(t *experiments.Table) (float64, string) {
		ok := 0.0
		for _, row := range t.Rows {
			if row[len(row)-1] == "yes" {
				ok++
			}
		}
		return ok, "cells-ok"
	})
}

func BenchmarkTheorem1Validation(b *testing.B) {
	runExperimentBench(b, "thm1", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 4), "bound-fs"
	})
}

func BenchmarkExascaleProjection(b *testing.B) {
	runExperimentBench(b, "exascale", func(t *experiments.Table) (float64, string) {
		return cell(t, lastRow(t), 3), "min-dynamic-%"
	})
}

func BenchmarkAblation(b *testing.B) {
	runExperimentBench(b, "ablation", nil)
}

// ---------------------------------------------------------------------
// Real-arithmetic end-to-end benchmarks on this machine.

func benchFactor(b *testing.B, kind layout.Kind, sch core.Scheduler, dratio float64) {
	b.Helper()
	const n = 512
	a := RandomMatrix(n, n, 1)
	opt := Options{Layout: kind, Block: 64, Workers: 2, Scheduler: sch, DynamicRatio: dratio}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(a, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(n * n * 8))
}

func BenchmarkRealCALUStaticBCL(b *testing.B) {
	benchFactor(b, layout.BCL, core.ScheduleStatic, 0)
}

func BenchmarkRealCALUDynamicBCL(b *testing.B) {
	benchFactor(b, layout.BCL, core.ScheduleDynamic, 1)
}

func BenchmarkRealCALUHybridBCL(b *testing.B) {
	benchFactor(b, layout.BCL, core.ScheduleHybrid, 0.1)
}

func BenchmarkRealCALUHybrid2lBL(b *testing.B) {
	benchFactor(b, layout.TwoLevel, core.ScheduleHybrid, 0.1)
}

func BenchmarkRealGEPPBaseline(b *testing.B) {
	const n = 512
	a := RandomMatrix(n, n, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.FactorGEPP(a, baseline.GEPPOptions{Block: 64, Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealIncPivBaseline(b *testing.B) {
	const n = 512
	a := RandomMatrix(n, n, 1)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.SolveIncPiv(a, rhs, baseline.IncPivOptions{Block: 64, Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Kernel microbenchmarks.

func viewOf(a *mat.Dense) kernel.View {
	return kernel.View{Rows: a.Rows, Cols: a.Cols, Stride: a.Stride, Data: a.Data}
}

// benchGemm reports GFLOPS of one square C -= A*B at size n, for
// either the dispatching (packed) entry or the naive oracle — the
// before/after pair that quantifies the packed kernel layer.
func benchGemm(b *testing.B, n int, gemm func(c, a2, b2 kernel.View)) {
	b.Helper()
	a := RandomMatrix(n, n, 1)
	bb := RandomMatrix(n, n, 2)
	c := RandomMatrix(n, n, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gemm(viewOf(c), viewOf(a), viewOf(bb))
	}
	b.SetBytes(3 * int64(n) * int64(n) * 8)
	gf := 2 * float64(n) * float64(n) * float64(n) * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gf, "GFLOPS")
	recordBenchGFLOPS(b, gf)
}

func BenchmarkKernelGemm128(b *testing.B) { benchGemm(b, 128, kernel.Gemm) }
func BenchmarkKernelGemm256(b *testing.B) { benchGemm(b, 256, kernel.Gemm) }
func BenchmarkKernelGemm512(b *testing.B) { benchGemm(b, 512, kernel.Gemm) }

// The seed's axpy loop nest, kept as the oracle and the baseline the
// packed path is measured against.
func BenchmarkKernelGemmNaive128(b *testing.B) { benchGemm(b, 128, kernel.GemmNaive) }
func BenchmarkKernelGemmNaive512(b *testing.B) { benchGemm(b, 512, kernel.GemmNaive) }

func BenchmarkKernelGemmNT256(b *testing.B) { benchGemm(b, 256, kernel.GemmNT) }

// Sub-crossover products: the direct register-tiled small path (the
// dispatcher's choice below 32^3) against the naive axpy nest it
// replaced.
func BenchmarkKernelGemmSmall16(b *testing.B)      { benchGemm(b, 16, kernel.Gemm) }
func BenchmarkKernelGemmSmall24(b *testing.B)      { benchGemm(b, 24, kernel.Gemm) }
func BenchmarkKernelGemmSmallNaive16(b *testing.B) { benchGemm(b, 16, kernel.GemmNaive) }
func BenchmarkKernelGemmSmallNaive24(b *testing.B) { benchGemm(b, 24, kernel.GemmNaive) }

func benchTrsmLower(b *testing.B, n int, trsm func(l, x kernel.View)) {
	b.Helper()
	l := RandomMatrix(n, n, 4)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
	}
	x := RandomMatrix(n, n, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trsm(viewOf(l), viewOf(x))
	}
	b.ReportMetric(float64(n)*float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkKernelTrsmLower128(b *testing.B) { benchTrsmLower(b, 128, kernel.TrsmLowerLeftUnit) }
func BenchmarkKernelTrsmLower256(b *testing.B) { benchTrsmLower(b, 256, kernel.TrsmLowerLeftUnit) }
func BenchmarkKernelTrsmLowerNaive256(b *testing.B) {
	benchTrsmLower(b, 256, kernel.TrsmLowerLeftUnitNaive)
}

// benchTrsmDiag benchmarks the left-side solve-DAG diagonal kernels,
// whose triangle needs a safely nonzero diagonal.
func benchTrsmDiag(b *testing.B, n int, trsm func(t, x kernel.View)) {
	b.Helper()
	l := RandomMatrix(n, n, 4)
	for i := 0; i < n; i++ {
		l.Set(i, i, 2+l.At(i, i))
	}
	x := RandomMatrix(n, n, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trsm(viewOf(l), viewOf(x))
	}
	b.ReportMetric(float64(n)*float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkKernelTrsmLowerNonUnit256(b *testing.B) { benchTrsmDiag(b, 256, kernel.TrsmLowerLeft) }
func BenchmarkKernelTrsmLowerNonUnitNaive256(b *testing.B) {
	benchTrsmDiag(b, 256, kernel.TrsmLowerLeftNaive)
}
func BenchmarkKernelTrsmUpper256(b *testing.B) { benchTrsmDiag(b, 256, kernel.TrsmUpperLeft) }
func BenchmarkKernelTrsmUpperNaive256(b *testing.B) {
	benchTrsmDiag(b, 256, kernel.TrsmUpperLeftNaive)
}

func BenchmarkKernelRecursiveLU(b *testing.B) {
	src := RandomMatrix(512, 128, 6)
	piv := make([]int, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := src.Clone()
		b.StartTimer()
		if err := kernel.RecursiveLU(viewOf(work), piv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelGetf2(b *testing.B) {
	src := RandomMatrix(512, 64, 7)
	piv := make([]int, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := src.Clone()
		b.StartTimer()
		if err := kernel.Getf2(viewOf(work), piv); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPanel reports GFLOPS of one tall-skinny GETRF (the panel
// operator on the static section's critical path) for either the
// blocked register-tiled entry (kernel.Getrf) or the scalar seed path
// (kernel.Getf2). The two compute bit-identical pivots and values, so
// the ratio is pure panel-throughput — the quantity the hybrid
// scheduling experiments are sensitive to, since every F task gates its
// whole trailing update.
func benchPanel(b *testing.B, m, n int, factor func(kernel.View, []int) error) {
	b.Helper()
	src := RandomMatrix(m, n, 11)
	piv := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := src.Clone()
		b.StartTimer()
		if err := factor(viewOf(work), piv); err != nil {
			b.Fatal(err)
		}
	}
	flops := float64(m)*float64(n)*float64(n) - float64(n)*float64(n)*float64(n)/3
	gf := flops * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gf, "GFLOPS")
	recordBenchGFLOPS(b, gf)
}

func BenchmarkPanelBlocked256x32(b *testing.B)  { benchPanel(b, 256, 32, kernel.Getrf) }
func BenchmarkPanelBlocked1024x32(b *testing.B) { benchPanel(b, 1024, 32, kernel.Getrf) }
func BenchmarkPanelBlocked4096x64(b *testing.B) { benchPanel(b, 4096, 64, kernel.Getrf) }
func BenchmarkPanelScalar256x32(b *testing.B)   { benchPanel(b, 256, 32, kernel.Getf2) }
func BenchmarkPanelScalar1024x32(b *testing.B)  { benchPanel(b, 1024, 32, kernel.Getf2) }
func BenchmarkPanelScalar4096x64(b *testing.B)  { benchPanel(b, 4096, 64, kernel.Getf2) }
func BenchmarkPanelRecursive4096x64(b *testing.B) {
	benchPanel(b, 4096, 64, kernel.RecursiveLU)
}

// ---------------------------------------------------------------------
// Dispatch overhead: scheduler throughput isolated from kernel time.

// dispatchBenchGraph builds depth layers of width no-op tasks, each
// depending on the same-index task of the previous layer, so readiness
// flows continuously and every completion exercises atomic dependency
// resolution plus one enqueue. Run closures are nil: the runtime's
// dispatch loop is the entire measured cost.
func dispatchBenchGraph(width, depth int) *dag.Graph {
	g := &dag.Graph{Name: "dispatch-bench"}
	for d := 0; d < depth; d++ {
		for w := 0; w < width; w++ {
			id := int32(d*width + w)
			t := &dag.Task{ID: id, Kind: dag.S, Owner: w, Static: w%2 == 0, Prio: int64(id)}
			if d > 0 {
				up := g.Tasks[(d-1)*width+w]
				up.Outs = append(up.Outs, id)
				t.NumDeps = 1
			}
			g.Tasks = append(g.Tasks, t)
		}
	}
	return g
}

// BenchmarkDispatch measures tasks/second of the real runtime on
// graphs of no-op tasks — the paper's dequeue-overhead quantity finally
// separated from kernel time. The `locked` variants run the same
// policies under the seed runtime's single global mutex: their
// tasks/sec flatline (or degrade) beyond a couple of workers, while
// the concurrent runtime's throughput grows with the worker count.
func BenchmarkDispatch(b *testing.B) {
	const width, depth = 256, 40
	policies := []struct {
		name string
		mk   func() sched.Policy
	}{
		{"static", func() sched.Policy { return sched.NewStatic() }},
		{"dynamic", func() sched.Policy { return sched.NewDynamic() }},
		{"hybrid", func() sched.Policy { return sched.NewHybrid() }},
		{"worksteal", func() sched.Policy { return sched.NewWorkStealing(9) }},
	}
	for _, mode := range []string{"concurrent", "locked"} {
		for _, pol := range policies {
			for _, workers := range []int{1, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/w%d", mode, pol.name, workers), func(b *testing.B) {
					g := dispatchBenchGraph(width, depth)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						_, err := rt.Run(g, pol.mk(), rt.Options{
							Workers: workers, GlobalLock: mode == "locked",
						})
						if err != nil {
							b.Fatal(err)
						}
					}
					tasks := float64(width*depth) * float64(b.N)
					b.ReportMetric(tasks/b.Elapsed().Seconds(), "tasks/s")
				})
			}
		}
	}
}

// ---------------------------------------------------------------------
// Resident engine throughput: Factor jobs/sec on a mixed-size workload
// through the shared worker pool versus the spawn-workers-per-call
// baseline, at increasing numbers of inflight jobs.

// engineBatch is one mixed 64..512 workload: the small/large imbalance
// the engine's inter-job dynamic share exists to absorb.
func engineBatch() []*mat.Dense {
	sizes := []int{64, 96, 128, 192, 256, 384, 512, 128}
	ms := make([]*mat.Dense, len(sizes))
	for i, n := range sizes {
		ms[i] = RandomMatrix(n, n, int64(100+i))
	}
	return ms
}

func engineJobOptions() core.Options {
	return core.Options{
		Block: 64, Workers: 2,
		Scheduler: core.ScheduleHybrid, DynamicRatio: 0.1,
	}
}

// reportLatencies emits jobs/s plus p50/p99 submit-to-done latency.
func reportLatencies(b *testing.B, lat []time.Duration) {
	b.Helper()
	if len(lat) == 0 {
		// Every job failed; the per-job b.Error output explains why.
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	jobs := float64(len(lat))
	b.ReportMetric(jobs/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(lat[len(lat)/2].Seconds()*1e3, "p50-ms")
	b.ReportMetric(lat[(len(lat)*99)/100].Seconds()*1e3, "p99-ms")
}

// BenchmarkEngineThroughput is the resident-versus-spawn A/B of the
// engine's reason to exist: the same mixed workload pushed through one
// long-lived pool (amortized workers and workspaces, two-level hybrid
// scheduling) and through per-call rt.Run worker spawning, at 1..8
// inflight jobs. The engine side must at least match the baseline's
// jobs/sec.
func BenchmarkEngineThroughput(b *testing.B) {
	batch := engineBatch()
	for _, inflight := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("engine/inflight%d", inflight), func(b *testing.B) {
			eng, err := engine.New(engine.Options{
				Workers: 4, MaxInflight: inflight, DynamicRatio: 0.25,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			var mu sync.Mutex
			var lat []time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Latencies are recorded at each job's true completion
				// (per-job waiter), matching how the spawn baseline
				// records its own — an in-order Wait loop would charge
				// head-of-line waiting to jobs that finished early.
				var wg sync.WaitGroup
				for _, a := range batch {
					start := time.Now()
					j, err := eng.SubmitFactor(a, engineJobOptions())
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						if err := j.Wait(); err != nil {
							b.Error(err)
							return
						}
						mu.Lock()
						lat = append(lat, time.Since(start))
						mu.Unlock()
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			reportLatencies(b, lat)
		})
		b.Run(fmt.Sprintf("spawn/inflight%d", inflight), func(b *testing.B) {
			var mu sync.Mutex
			var lat []time.Duration
			sem := make(chan struct{}, inflight)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for _, a := range batch {
					start := time.Now()
					sem <- struct{}{}
					wg.Add(1)
					go func(a *mat.Dense) {
						defer wg.Done()
						defer func() { <-sem }()
						if _, err := core.Factor(a, engineJobOptions()); err != nil {
							b.Error(err)
							return
						}
						mu.Lock()
						lat = append(lat, time.Since(start))
						mu.Unlock()
					}(a)
				}
				wg.Wait()
			}
			b.StopTimer()
			reportLatencies(b, lat)
		})
	}
}

// reportClassLatencies emits jobs/s over the whole mix plus per-class
// p50/p99 submit-to-done latency.
func reportClassLatencies(b *testing.B, small, large []time.Duration) {
	b.Helper()
	if len(small)+len(large) == 0 {
		return
	}
	b.ReportMetric(float64(len(small)+len(large))/b.Elapsed().Seconds(), "jobs/s")
	emit := func(class string, lat []time.Duration) {
		if len(lat) == 0 {
			return
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(lat[len(lat)/2].Seconds()*1e3, class+"-p50-ms")
		b.ReportMetric(lat[(len(lat)*99)/100].Seconds()*1e3, class+"-p99-ms")
	}
	emit("small", small)
	emit("large", large)
}

// BenchmarkEngineMixedTraffic is the A/B behind the two-lane admission:
// a burst of tiny factors sandwiched between two big ones, pushed
// through the FIFO queue (big job at the head blocks the burst; every
// tiny job pays its own reservation) and through traffic shaping
// (express lane fuses the burst into one composite, big lane bounded to
// BigShare), across several inter-job dynamic ratios. The metric that
// must move is the small-class p99.
func BenchmarkEngineMixedTraffic(b *testing.B) {
	small := make([]*mat.Dense, 12)
	for i := range small {
		small[i] = RandomMatrix(64, 64, int64(200+i))
	}
	large := []*mat.Dense{RandomMatrix(448, 448, 300), RandomMatrix(512, 512, 301)}
	for _, mode := range []struct {
		name string
		fifo bool
	}{{"fifo", true}, {"twolane", false}} {
		for _, dratio := range []float64{0, 0.25, 0.5} {
			b.Run(fmt.Sprintf("%s/dratio%03.0f", mode.name, dratio*100), func(b *testing.B) {
				eng, err := engine.New(engine.Options{
					Workers: 4, MaxInflight: 32, DynamicRatio: dratio, FIFO: mode.fifo,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				var mu sync.Mutex
				var latSmall, latLarge []time.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					submit := func(a *mat.Dense, bucket *[]time.Duration) {
						j, err := eng.SubmitFactor(a, engineJobOptions())
						if err != nil {
							b.Error(err)
							return
						}
						wg.Add(1)
						go func() {
							defer wg.Done()
							if err := j.Wait(); err != nil {
								b.Error(err)
								return
							}
							// Latency from the engine's own clock (admission to
							// last task), not the waiter's wake-up time: with
							// the pool saturating every core, waiter goroutines
							// are descheduled for the length of whatever big
							// kernel is running and would charge that to jobs
							// that completed long before.
							mu.Lock()
							*bucket = append(*bucket, j.QueueWait()+j.Span())
							mu.Unlock()
						}()
					}
					// Big job first so a FIFO queue head-of-line-blocks the
					// small burst behind it — the pathology the express lane
					// removes.
					submit(large[0], &latLarge)
					for _, a := range small {
						submit(a, &latSmall)
					}
					submit(large[1], &latLarge)
					wg.Wait()
				}
				b.StopTimer()
				reportClassLatencies(b, latSmall, latLarge)
			})
		}
	}
}

// ---------------------------------------------------------------------
// Triangular solve: the blocked multi-RHS solve graph versus the
// scalar substitution baseline it replaced, at n=2048 with 32
// right-hand sides — the before/after pair that quantifies the solve
// subsystem (packed-GEMM updates + task parallelism vs per-element
// scalar loops).

var (
	solveBenchOnce sync.Once
	solveBenchA    *mat.Dense
	solveBenchB    *mat.Dense
	solveBenchF    *core.Factorization
)

const (
	solveBenchN    = 2048
	solveBenchNRHS = 32
)

// solveBenchSetup factors the shared benchmark system once; both solve
// benchmarks (and the engine solve bench) reuse it so the O(n³) factor
// cost is paid a single time per `go test -bench` run.
func solveBenchSetup(b *testing.B) *core.Factorization {
	b.Helper()
	solveBenchOnce.Do(func() {
		solveBenchA = RandomMatrix(solveBenchN, solveBenchN, 31)
		solveBenchB = RandomMatrix(solveBenchN, solveBenchNRHS, 33)
		f, err := core.Factor(solveBenchA, core.Options{
			Block: 128, Workers: benchWorkers(),
			Scheduler: core.ScheduleHybrid, DynamicRatio: 0.1,
		})
		if err != nil {
			panic(err)
		}
		solveBenchF = f
	})
	return solveBenchF
}

func benchWorkers() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	return w
}

func solveFlops() float64 {
	// Forward + backward sweep: ~2 * (2 n² nrhs) flops.
	return 4 * float64(solveBenchN) * float64(solveBenchN) * float64(solveBenchNRHS)
}

// BenchmarkSolveScalar is the seed path: one scalar substitution per
// right-hand side.
func BenchmarkSolveScalar(b *testing.B) {
	f := solveBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < solveBenchNRHS; j++ {
			if _, err := f.Solve(solveBenchB.Col(j)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(solveFlops()*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkSolveBlocked is the blocked two-sweep solve graph on the
// same system: diagonal TRSM tasks plus packed-GEMM updates over the
// whole RHS block, scheduled across workers.
func BenchmarkSolveBlocked(b *testing.B) {
	f := solveBenchSetup(b)
	opt := core.Options{
		Block: 128, Workers: benchWorkers(),
		Scheduler: core.ScheduleHybrid, DynamicRatio: 0.1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.SolveMany(solveBenchB, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(solveFlops()*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkEngineSolveThroughput pushes batches of concurrent multi-RHS
// solve jobs through the resident pool — the solve-heavy service
// workload the solve DAG exists for — and reports jobs/s with
// submit-to-done latency percentiles.
func BenchmarkEngineSolveThroughput(b *testing.B) {
	const n, nrhs, batchJobs = 512, 8, 16
	a := RandomMatrix(n, n, 51)
	f, err := core.Factor(a, core.Options{Block: 64, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]*mat.Dense, batchJobs)
	for i := range rhs {
		rhs[i] = RandomMatrix(n, nrhs, int64(60+i))
	}
	eng, err := engine.New(engine.Options{Workers: 4, MaxInflight: 8, DynamicRatio: 0.25})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	opt := core.Options{Block: 64, Workers: 2, Scheduler: core.ScheduleHybrid, DynamicRatio: 0.1}
	var mu sync.Mutex
	var lat []time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, bm := range rhs {
			start := time.Now()
			j, err := eng.SubmitSolveMany(f, bm, opt)
			if err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := j.Wait(); err != nil {
					b.Error(err)
					return
				}
				mu.Lock()
				lat = append(lat, time.Since(start))
				mu.Unlock()
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	reportLatencies(b, lat)
}

// ---------------------------------------------------------------------
// Simulator throughput (events/second of the DES engine itself).

func BenchmarkSimulatorEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.FactorSim(4000, 4000, 100, 36, 3, sim.Config{
			Machine: sim.AMDOpteron48(), Workers: 48, Layout: layout.BCL,
			Policy: sched.NewHybrid(), Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Cluster router solve fan-out: full HTTP round-trips through the
// sharded serving tier, with the key's replicas sharing the read load.

func BenchmarkRouterSolveFanout(b *testing.B) {
	c, err := harness.Start(harness.Options{Shards: 3, Replicas: 2, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	const n = 128
	resp, err := http.Post(c.URL()+"/v1/factor", "application/json",
		strings.NewReader(fmt.Sprintf(`{"n":%d,"seed":3,"workers":1}`, n)))
	if err != nil {
		b.Fatal(err)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.ID == "" {
		b.Fatalf("factor: status %d id %q", resp.StatusCode, out.ID)
	}
	solveBody := fmt.Sprintf(`{"id":%q,"b":[%s]}`, out.ID, strings.Repeat("1,", n-1)+"1")

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r, err := http.Post(c.URL()+"/v1/solve", "application/json", strings.NewReader(solveBody))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				b.Errorf("solve: status %d", r.StatusCode)
				return
			}
		}
	})
}
